"""Ablation: API queries consumed per interpretation, per method.

Cloud APIs bill per query, so the practical cost of each method is its
query footprint.  Analytically:

* naive: ``d + 1`` queries;
* ZOO: ``2d`` queries;
* LIME: ``n_samples + 1`` (default ``2(d+1) + 1``);
* OpenAPI: ``1 + T (d+1)`` — the only method whose cost varies, because
  ``T`` is the number of shrink iterations until the certificate passes.

This bench measures the empirical distribution of OpenAPI's ``T`` on both
model families (the paper reports T < 20 always, typically much less) and
cross-checks the formulas.
"""

import numpy as np

from repro.api import PredictionAPI
from repro.baselines import LogOddsLIME, ZOOInterpreter
from repro.core import NaiveInterpreter, OpenAPIInterpreter
from repro.eval.reporting import render_table


def test_ablation_query_cost(benchmark, setups, config, record_result):
    def run():
        rows = []
        for setup in setups:
            d = setup.api.n_features
            rng = np.random.default_rng(0)
            idx = rng.choice(setup.test.n_samples, size=8, replace=False)
            instances = setup.test.X[idx]
            classes = setup.model.predict(instances)

            # Fresh metered APIs so counts are exact per method.
            methods = {
                "OpenAPI": OpenAPIInterpreter(seed=0),
                "naive(1e-4)": NaiveInterpreter(1e-4, seed=0),
            }
            for name, interpreter in methods.items():
                api = PredictionAPI(setup.model)
                iterations = []
                for x0, c in zip(instances, classes):
                    interp = interpreter.interpret(api, x0, int(c))
                    iterations.append(interp.iterations)
                rows.append([
                    setup.label, name,
                    api.query_count / len(instances),
                    float(np.mean(iterations)),
                    int(np.max(iterations)),
                ])

            api = PredictionAPI(setup.model)
            zoo = ZOOInterpreter(api, h=1e-4, seed=0)
            for x0, c in zip(instances, classes):
                zoo.explain(x0, int(c))
            rows.append([setup.label, "ZOO(1e-4)",
                         api.query_count / len(instances), 1.0, 1])

            api = PredictionAPI(setup.model)
            lime = LogOddsLIME(api, h=1e-4, seed=0)
            for x0, c in zip(instances, classes):
                lime.explain(x0, int(c))
            rows.append([setup.label, "LIME-lin(1e-4)",
                         api.query_count / len(instances), 1.0, 1])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["setup", "method", "queries/instance", "mean iters", "max iters"],
        rows,
    )
    text += (
        "\n\nanalytic costs (d features): naive d+1, ZOO 2d, LIME 2(d+1)+1,"
        "\nOpenAPI 1 + T(d+1) with T the adaptive iteration count — the"
        "\nprice of the exactness certificate is a small multiple of d."
    )
    record_result("ablation_query_cost", text)

    # Formula cross-checks (+1 for the class-inference query where used).
    for setup_label, name, queries, _, max_iters in rows:
        d = next(s.api.n_features for s in setups if s.label == setup_label)
        if name.startswith("ZOO"):
            assert queries == 2 * d
        elif name.startswith("naive"):
            assert queries == d + 1
        elif name.startswith("LIME"):
            assert queries == 2 * (d + 1) + 1
        else:  # OpenAPI
            assert queries <= 1 + max_iters * (d + 1)
