"""Query-transport broker: fused round trips under concurrent callers.

The broker's claim (``repro/api/transport.py``): many interpretations in
flight at once should *share* round trips — each caller's probe and
shrink-round queries coalesce into fused ``predict_proba_blocks`` trips —
without changing a single bit of any answer and without blurring whose
queries were whose.  This bench drives ``--callers`` concurrent
``OpenAPIInterpreter`` threads through three arms and gates:

1. **Round-trip reduction** — the brokered arm must perform at least
   ``GATE_MIN_TRIP_REDUCTION``x fewer physical API round trips than the
   broker-off arm (same interpreters, same seeds, per-request dispatch).
2. **Bitwise transparency** — on the clean transport, every brokered
   interpretation must be *bitwise identical* (decision features, every
   pair's weights/intercept, query count) to the broker-off arm's.
3. **Exact attribution under faults** — on a lossy transport (seeded
   transient failures + retries), every caller still gets the bitwise
   identical answer, and the per-caller handle meters must sum *exactly*
   to the API's query meter: ``sum(handle.query_count) ==
   api.query_count``.

Run standalone (the CI smoke uses ``--tiny`` and emits
``BENCH_transport.json``)::

    PYTHONPATH=src python benchmarks/bench_transport.py --tiny
    PYTHONPATH=src python benchmarks/bench_transport.py --callers 32 \
        --output BENCH_transport.json

or as a pytest bench: ``pytest benchmarks/bench_transport.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.api import (
    DirectTransport,
    PredictionAPI,
    QueryBroker,
    RetryPolicy,
    SimulatedTransport,
)
from repro.core import OpenAPIInterpreter
from repro.core.types import Interpretation
from repro.serving.workload import _train_bench_model

#: Minimum physical-round-trip reduction (broker-off trips / brokered
#: trips) at 32 concurrent interpretations.
GATE_MIN_TRIP_REDUCTION: float = 3.0

#: Transient-failure probability of the fault-injection arm.
FAULT_FAILURE_PROB: float = 0.25


@dataclass(frozen=True)
class TransportBenchReport:
    """The three arms' accounting plus the gate verdicts."""

    n_callers: int
    trips_direct: int
    trips_brokered: int
    trip_reduction: float
    queries_direct: int
    queries_brokered: int
    bitwise_identical: bool
    attribution_exact_clean: bool
    attribution_exact_faulty: bool
    bitwise_identical_faulty: bool
    faulty_retries: int
    faulty_transient_failures: int
    elapsed_direct_s: float
    elapsed_brokered_s: float
    broker_stats: dict

    def as_dict(self) -> dict:
        return {
            "n_callers": self.n_callers,
            "trips_direct": self.trips_direct,
            "trips_brokered": self.trips_brokered,
            "trip_reduction": self.trip_reduction,
            "queries_direct": self.queries_direct,
            "queries_brokered": self.queries_brokered,
            "bitwise_identical": self.bitwise_identical,
            "attribution_exact_clean": self.attribution_exact_clean,
            "attribution_exact_faulty": self.attribution_exact_faulty,
            "bitwise_identical_faulty": self.bitwise_identical_faulty,
            "faulty_retries": self.faulty_retries,
            "faulty_transient_failures": self.faulty_transient_failures,
            "elapsed_direct_s": self.elapsed_direct_s,
            "elapsed_brokered_s": self.elapsed_brokered_s,
            "broker_stats": self.broker_stats,
        }

    def as_text(self) -> str:
        return "\n".join([
            "query-transport broker: fused round trips under "
            f"{self.n_callers} concurrent interpretations",
            "",
            f"{'arm':<12} {'trips':>7} {'queries':>9} {'sec':>8}",
            f"{'direct':<12} {self.trips_direct:>7} "
            f"{self.queries_direct:>9} {self.elapsed_direct_s:>8.3f}",
            f"{'brokered':<12} {self.trips_brokered:>7} "
            f"{self.queries_brokered:>9} {self.elapsed_brokered_s:>8.3f}",
            "",
            f"round-trip reduction (direct / brokered): "
            f"{self.trip_reduction:.1f}x",
            f"bitwise identical (clean transport):      "
            f"{self.bitwise_identical}",
            f"per-caller attribution exact (clean):     "
            f"{self.attribution_exact_clean}",
            f"per-caller attribution exact (faulty):    "
            f"{self.attribution_exact_faulty} "
            f"({self.faulty_transient_failures} failures, "
            f"{self.faulty_retries} retries survived)",
            f"bitwise identical (faulty transport):     "
            f"{self.bitwise_identical_faulty}",
        ])


def _run_arm(
    model,
    instances: np.ndarray,
    *,
    broker_factory,
    seed: int,
) -> tuple[PredictionAPI, QueryBroker, list[Interpretation], float]:
    """One arm: every caller interprets its instance on its own thread.

    All callers share one API through one broker; caller ``i`` uses
    interpreter seed ``seed + i`` in every arm, so arms are comparable
    caller by caller.  A barrier lines the threads up so the coalescing
    window actually sees concurrency.
    """
    api = PredictionAPI(model)
    broker = broker_factory(api)
    n = instances.shape[0]
    results: list[Interpretation | None] = [None] * n
    errors: list[Exception | None] = [None] * n
    barrier = threading.Barrier(n)

    def work(i: int) -> None:
        handle = broker.handle(f"caller-{i}")
        interpreter = OpenAPIInterpreter(seed=seed + i)
        barrier.wait()
        try:
            results[i] = interpreter.interpret(handle, instances[i])
        except Exception as exc:  # noqa: BLE001 — reported in the gate
            errors[i] = exc

    threads = [
        threading.Thread(target=work, args=(i,), name=f"caller-{i}")
        for i in range(n)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    failed = [e for e in errors if e is not None]
    if failed:
        raise RuntimeError(
            f"{len(failed)} caller(s) failed; first: {failed[0]!r}"
        ) from failed[0]
    return api, broker, results, elapsed  # type: ignore[return-value]


def _interpretation_fingerprint(interp: Interpretation) -> tuple:
    """Everything that must match bitwise across arms."""
    pairs = tuple(sorted(interp.pair_estimates))
    return (
        interp.target_class,
        interp.iterations,
        interp.n_queries,
        interp.decision_features.tobytes(),
        pairs,
        tuple(
            (
                interp.pair_estimates[p].weights.tobytes(),
                float(interp.pair_estimates[p].intercept).hex(),
            )
            for p in pairs
        ),
    )


def _attribution_exact(api: PredictionAPI, broker: QueryBroker) -> bool:
    return sum(h.query_count for h in broker.handles) == api.query_count


def run_transport_benchmark(
    *,
    n_callers: int = 32,
    seed: int = 0,
    tiny: bool = False,
    window_s: float = 0.02,
) -> TransportBenchReport:
    """The three-arm comparison; see the module docstring for the gates."""
    n_features, epochs = (5, 30) if tiny else (8, 80)
    model, X = _train_bench_model(
        n_features=n_features, epochs=epochs, seed=seed
    )
    instances = X[:n_callers]
    if instances.shape[0] < n_callers:
        reps = -(-n_callers // X.shape[0])
        instances = np.tile(X, (reps, 1))[:n_callers]

    # Arm 1 — broker off: same machinery, coalescing disabled, so every
    # logical request is its own physical trip and per-caller meters are
    # still exact (a raw shared API could not attribute concurrent
    # callers).
    api_direct, broker_direct, direct, elapsed_direct = _run_arm(
        model, instances, seed=seed,
        broker_factory=lambda api: QueryBroker(
            DirectTransport(api), coalesce=False
        ),
    )

    # Arm 2 — broker on, clean transport.
    api_brokered, broker_brokered, brokered, elapsed_brokered = _run_arm(
        model, instances, seed=seed,
        broker_factory=lambda api: QueryBroker(
            DirectTransport(api), window_s=window_s
        ),
    )

    # Arm 3 — broker on, lossy transport: seeded transient failures,
    # instant (injected) backoff so the bench stays fast.
    api_faulty, broker_faulty, faulty, _ = _run_arm(
        model, instances, seed=seed,
        broker_factory=lambda api: QueryBroker(
            SimulatedTransport(
                api, failure_prob=FAULT_FAILURE_PROB, seed=seed, sleep=None
            ),
            window_s=window_s,
            retry=RetryPolicy(max_retries=16),
            sleep=None,
        ),
    )

    fingerprints_direct = [_interpretation_fingerprint(i) for i in direct]
    bitwise = fingerprints_direct == [
        _interpretation_fingerprint(i) for i in brokered
    ]
    bitwise_faulty = fingerprints_direct == [
        _interpretation_fingerprint(i) for i in faulty
    ]
    faulty_stats = broker_faulty.stats()
    return TransportBenchReport(
        n_callers=n_callers,
        trips_direct=api_direct.request_count,
        trips_brokered=api_brokered.request_count,
        trip_reduction=(
            api_direct.request_count / api_brokered.request_count
            if api_brokered.request_count
            else float("inf")
        ),
        queries_direct=api_direct.query_count,
        queries_brokered=api_brokered.query_count,
        bitwise_identical=bitwise,
        attribution_exact_clean=(
            _attribution_exact(api_direct, broker_direct)
            and _attribution_exact(api_brokered, broker_brokered)
        ),
        attribution_exact_faulty=_attribution_exact(api_faulty, broker_faulty),
        bitwise_identical_faulty=bitwise_faulty,
        faulty_retries=faulty_stats.n_retries,
        faulty_transient_failures=faulty_stats.n_transient,
        elapsed_direct_s=elapsed_direct,
        elapsed_brokered_s=elapsed_brokered,
        broker_stats=broker_brokered.stats().as_dict(),
    )


def gate_failures(report: TransportBenchReport) -> list[str]:
    """Every violated acceptance gate, as human-readable messages."""
    failures = []
    if report.trip_reduction < GATE_MIN_TRIP_REDUCTION:
        failures.append(
            f"round-trip reduction {report.trip_reduction:.1f}x below the "
            f"{GATE_MIN_TRIP_REDUCTION:.0f}x gate "
            f"({report.trips_direct} direct vs {report.trips_brokered} "
            "brokered trips)"
        )
    if not report.bitwise_identical:
        failures.append(
            "brokered interpretations are not bitwise identical to the "
            "broker-off arm on a clean transport"
        )
    if not report.attribution_exact_clean:
        failures.append(
            "per-caller query attribution does not sum to the API meter "
            "on the clean transport"
        )
    if not report.attribution_exact_faulty:
        failures.append(
            "per-caller query attribution does not sum to the API meter "
            "under fault injection"
        )
    if not report.bitwise_identical_faulty:
        failures.append(
            "interpretations differ under fault injection (retries must "
            "not change answers)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="query-transport broker: fused round trips, bitwise "
        "transparency, exact attribution"
    )
    parser.add_argument("--callers", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke scale (small model, short training; same gates)",
    )
    parser.add_argument(
        "--output", default=None,
        help="write the report as a JSON artifact",
    )
    args = parser.parse_args(argv)
    if args.callers < 2:
        print("error: --callers must be >= 2", file=sys.stderr)
        return 2

    report = run_transport_benchmark(
        n_callers=args.callers, seed=args.seed, tiny=args.tiny
    )
    print(report.as_text())
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
            handle.write("\n")
        print(f"\nJSON artifact written to {args.output}")

    failures = gate_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_transport_broker(record_result):
    """Pytest-harness entry (``pytest benchmarks/bench_transport.py``)."""
    report = run_transport_benchmark(tiny=True)
    record_result("transport_broker", report.as_text())
    assert not gate_failures(report)


if __name__ == "__main__":
    raise SystemExit(main())
