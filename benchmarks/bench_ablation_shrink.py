"""Ablation: hypercube shrink factor vs iterations and query cost.

Algorithm 1 halves the edge each failed round (shrink = 0.5).  A more
aggressive factor reaches a clean hypercube in fewer rounds but overshoots
to needlessly small cubes (risking the float64 noise floor); a lazier
factor spends more rounds.  This bench sweeps the factor on the PLNN and
reports iterations, queries and the final edge.

Also sweeps the initial edge, validating the paper's remark that its value
"has little influence" thanks to the adaptation.
"""

import numpy as np

from repro.api import PredictionAPI
from repro.core import OpenAPIInterpreter
from repro.eval.reporting import render_table


def test_ablation_shrink_factor(benchmark, setups, config, record_result):
    setup = next(
        s for s in setups
        if s.model_name == "plnn" and s.dataset_name == "synthetic-digits"
    )
    rng = np.random.default_rng(0)
    idx = rng.choice(setup.test.n_samples, size=8, replace=False)
    instances = setup.test.X[idx]
    classes = setup.model.predict(instances)

    def run():
        rows = []
        for shrink in (0.5, 0.25, 0.1):
            api = PredictionAPI(setup.model)
            interpreter = OpenAPIInterpreter(seed=3, shrink=shrink)
            iters, edges = [], []
            for x0, c in zip(instances, classes):
                interp = interpreter.interpret(api, x0, int(c))
                iters.append(interp.iterations)
                edges.append(interp.final_edge)
            rows.append([
                f"shrink={shrink}", float(np.mean(iters)), int(np.max(iters)),
                float(np.median(edges)), api.query_count / len(instances),
            ])
        for initial in (10.0, 1.0, 0.01):
            api = PredictionAPI(setup.model)
            interpreter = OpenAPIInterpreter(seed=3, initial_edge=initial)
            iters = []
            for x0, c in zip(instances, classes):
                iters.append(interpreter.interpret(api, x0, int(c)).iterations)
            rows.append([
                f"initial={initial}", float(np.mean(iters)),
                int(np.max(iters)), float("nan"),
                api.query_count / len(instances),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["setting", "mean iters", "max iters", "median final edge",
         "queries/instance"],
        rows,
    )
    text += (
        "\n\nshape: aggressive shrinking trades iterations for overshoot;"
        "\nthe initial edge barely matters (the paper's observation) —"
        "\nadaptation absorbs a 1000x initial-edge difference in a few"
        "\nextra halvings."
    )
    record_result("ablation_shrink", text)

    by_name = {r[0]: r for r in rows}
    assert by_name["shrink=0.1"][1] <= by_name["shrink=0.5"][1], (
        "aggressive shrink should not need more iterations"
    )
    # Paper: iterations always < 20 in practice.
    for row in rows:
        assert row[2] < 20, f"{row[0]}: exceeded 20 iterations"
