"""Ablation: what API response degradation does to OpenAPI.

The paper's theory assumes the API reports exact probabilities.  Real
services round for display or add noise as extraction defences.  OpenAPI's
certificate turns both into *detectable* failures: interpretations are
either still exact (degradation below the certificate's noise floor) or
explicitly refused — never silently wrong.

This bench sweeps probability rounding (decimals) and Gaussian response
noise, reporting certified-rate, refusal-rate and, crucially, the
wrong-but-certified rate.

One subtle, genuine behaviour: *coarse* rounding (3-6 decimals) creates
plateaus — inside a small enough hypercube every rounded response is
identical, which is a perfectly consistent constant system, so OpenAPI
certifies ``D ≈ 0``.  That answer faithfully describes the **rounded**
API (a piecewise-constant function is a PLM whose regions have zero
weights) while revealing nothing about the hidden model — quantization is
an *effective defence*, converting interpretation into either refusal or
a correct-but-vacuous plateau answer, never a misleading nonzero one.
The bench classifies those separately and asserts that every certified
non-plateau answer is accurate.
"""

import numpy as np

from repro.api import NoisyResponse, PredictionAPI, RoundedResponse
from repro.core import OpenAPIInterpreter
from repro.eval.reporting import render_table
from repro.exceptions import CertificateError
from repro.metrics import l1_distance
from repro.models.openbox import ground_truth_decision_features

WRONG_THRESHOLD = 1e-3


def test_ablation_api_noise(benchmark, setups, config, record_result):
    setup = next(
        s for s in setups
        if s.model_name == "plnn" and s.dataset_name == "synthetic-fashion"
    )
    rng = np.random.default_rng(0)
    idx = rng.choice(setup.test.n_samples, size=6, replace=False)
    instances = setup.test.X[idx]
    classes = setup.model.predict(instances)

    transforms = [
        ("exact", None),
        ("round 15 dp", RoundedResponse(15)),
        ("round 9 dp", RoundedResponse(9)),
        ("round 6 dp", RoundedResponse(6)),
        ("round 3 dp", RoundedResponse(3)),
        ("noise 1e-9", NoisyResponse(1e-9, seed=1)),
        ("noise 1e-4", NoisyResponse(1e-4, seed=1)),
    ]

    def run():
        rows = []
        for name, transform in transforms:
            api = PredictionAPI(setup.model, transform=transform)
            interpreter = OpenAPIInterpreter(seed=2, max_iterations=25)
            accurate = plateau = misleading = refused = 0
            for x0, c in zip(instances, classes):
                try:
                    interp = interpreter.interpret(api, x0, int(c))
                except CertificateError:
                    refused += 1
                    continue
                gt = ground_truth_decision_features(setup.model, x0, int(c))
                if l1_distance(gt, interp.decision_features) <= WRONG_THRESHOLD:
                    accurate += 1
                elif np.abs(interp.decision_features).max() < 1e-3:
                    # Quantization plateau: a certified (correct) constant
                    # model of the *rounded* API — vacuous, not misleading.
                    plateau += 1
                else:
                    misleading += 1
            rows.append(
                [name, accurate, plateau, misleading, refused, len(instances)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["API response", "accurate", "plateau (D≈0)", "misleading",
         "refused", "n"],
        rows,
    )
    text += (
        "\n\nshape: exact responses certify everything accurately; fine"
        "\nrounding / noise flips interpretations to refusals; coarse"
        "\nrounding yields certified-but-vacuous plateau answers (the"
        "\nrounded API genuinely is locally constant).  The 'misleading'"
        "\ncolumn — certified, nonzero, wrong — must be zero throughout."
    )
    record_result("ablation_api_noise", text)

    for name, accurate, plateau, misleading, refused, n in rows:
        assert misleading == 0, f"{name}: certified a misleading answer"
        assert accurate + plateau + refused == n
    assert rows[0][1] == len(instances), "exact API should always certify"
