"""Multi-process gateway: worker-fleet scaling with bitwise identity.

The gateway's claim (``repro/serving/gateway.py``): interpretation
serving parallelizes across *processes* without changing a single
answer byte.  Workers train the demo PLNN independently (deterministic
recipe), solve with per-instance seeding (every certified solve a pure
function of ``(seed, x0)``), and share one mmap'd L2 segment directory
a single writer appends to — so whichever worker, tier, or epoch
serves a request, the payload is bitwise the sequential single-process
service's.  This bench replays one drifting-Zipf stream over
region-distinct anchors through the reference and two fleet arms and
gates:

* **bitwise identity, always** (``--tiny`` included) — every fleet
  response payload equals the single-process reference's, request by
  request, at every worker count — including the overload and
  rolling-restart arms below;
* **fleet scaling** (full scale, >= 2 cores) — the 4-worker fleet must
  serve >= ``min(2.0, 0.5 * min(4, cores))`` times the 1-worker
  fleet's throughput;
* **bounded overload** — a client pool at 2x the admission capacity:
  every response is a correct 200 or a structured 429, and (full scale
  only) some shedding happened and admitted p95 stays within the
  analytic bounded-admission bound — no event-loop collapse;
* **zero-loss rolling restart** — ``POST /admin/restart`` fired
  mid-replay replaces every worker process; not one request may be
  lost, at any scale.

The workload, arms and gates live in
:func:`repro.serving.run_gateway_benchmark`, shared with the
``python -m repro serve --gateway`` path's machinery.

Run standalone (the CI smoke uses ``--tiny``)::

    PYTHONPATH=src python benchmarks/bench_gateway.py --tiny
    PYTHONPATH=src python benchmarks/bench_gateway.py \\
        --output BENCH_gateway.json

or as a pytest bench: ``pytest benchmarks/bench_gateway.py``.
"""

from __future__ import annotations

import argparse
import sys

from repro.io import write_report
from repro.serving import gateway_gate_failures, run_gateway_benchmark


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="multi-process gateway: worker-fleet throughput "
        "scaling under a bitwise-identity gate"
    )
    parser.add_argument("--requests", type=int, default=240)
    parser.add_argument("--anchors", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--concurrency", type=int, default=8,
        help="concurrent HTTP client threads during the replay "
        "(default: 8)",
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke scale (small model, 48 requests, 1- and 4-worker "
        "fleets, bitwise gates only)",
    )
    parser.add_argument(
        "--output", default=None,
        help="write the report here (JSON for .json paths, text "
        "otherwise)",
    )
    args = parser.parse_args(argv)

    report, min_speedup = run_gateway_benchmark(
        n_requests=args.requests, n_anchors=args.anchors,
        seed=args.seed, tiny=args.tiny, concurrency=args.concurrency,
    )
    print(report.as_text())
    if args.output:
        write_report(args.output, report)
        print(f"\nreport written to {args.output}")

    failures = gateway_gate_failures(report, min_speedup=min_speedup)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_gateway_bench(record_result):
    """Pytest-harness entry (``pytest benchmarks/bench_gateway.py``)."""
    report, min_speedup = run_gateway_benchmark()
    record_result("gateway", report.as_text())
    failures = gateway_gate_failures(report, min_speedup=min_speedup)
    assert not failures, failures


if __name__ == "__main__":
    raise SystemExit(main())
