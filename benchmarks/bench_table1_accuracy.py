"""Table I: training and testing accuracies of all target models.

Regenerates the paper's Table I (PLNN and LMT on FMNIST and MNIST
stand-ins).  The benchmark times the full pipeline — dataset generation,
model training, accuracy evaluation — which is what the table costs.

Expected shape (paper): both model families fit their training sets well
(paper: 0.88-0.99 train accuracy) with a modest generalization gap.
"""

from repro.eval import ExperimentConfig, build_setups, build_table1, render_table


def test_table1_accuracy(benchmark, config, record_result):
    def build():
        return build_setups(config)

    setups = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = build_table1(setups=setups)

    text = render_table(
        ["dataset", "model", "train acc", "test acc"],
        [[r.dataset, r.model, r.train_accuracy, r.test_accuracy] for r in rows],
    )
    text += (
        "\n\npaper's Table I shape: all models fit the training data well"
        "\n(paper values 0.888-0.991 train / 0.865-0.971 test at 784-dim scale)."
    )
    record_result("table1_accuracy", text)

    for row in rows:
        assert row.train_accuracy > 0.85, f"{row.dataset}/{row.model} undertrained"
