"""Region sign index: shortlisted vs linear membership scan at scale.

The pruning index's claim (``repro/serving/index.py``): the exact
one-matmul membership test stays the sole correctness authority, but it
does not have to run over the whole inventory — a coarse hyperplane-sign
bucket probe plus a nearest-anchor shortlist narrows the candidate set
first, and a shortlist miss falls back to the full scan, so answers are
identical with the index on or off.  This bench builds synthetic region
inventories of growing size (1M regions at default scale), times the
production ``RegionCache._scan`` in both arms, and gates:

* **identical winners, always** (``--tiny`` included) — every probe
  returns a bitwise-equal ``(key, distance)`` winner in both arms;
* **tiered transparency, always** — one drifting-Zipf stream replayed
  through two tiered stores (index off/on) at a tiny L1, so eviction,
  demotion and promotion all fire, must yield identical hit/miss counts
  and bitwise-identical answers;
* **sub-linear scaling, at default scale** — the indexed scan must be
  >= 4x faster than the linear scan at the largest inventory, and its
  cost growth across the size sweep at most half the linear arm's.

The inventory construction, scale constants and gates live in
:func:`repro.serving.run_region_index_benchmark`.

Run standalone (the CI smoke uses ``--tiny``)::

    PYTHONPATH=src python benchmarks/bench_region_index.py --tiny
    PYTHONPATH=src python benchmarks/bench_region_index.py \\
        --output BENCH_region_index.json

or as a pytest bench: ``pytest benchmarks/bench_region_index.py``.
"""

from __future__ import annotations

import argparse
import sys

from repro.io import write_report
from repro.serving import (
    region_index_gate_failures,
    run_region_index_benchmark,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="region sign index: sub-linear membership-scan "
        "scaling with identical answers index on/off"
    )
    parser.add_argument("--index-bits", type=int, default=16)
    parser.add_argument("--shortlist", type=int, default=64)
    parser.add_argument("--requests", type=int, default=120)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke scale (hundreds of regions instead of 1M, "
        "correctness gates only)",
    )
    parser.add_argument(
        "--output", default=None,
        help="write the report here (JSON for .json paths, text otherwise)",
    )
    args = parser.parse_args(argv)

    report, (min_speedup, max_growth_ratio) = run_region_index_benchmark(
        index_bits=args.index_bits, index_shortlist=args.shortlist,
        n_requests=args.requests, seed=args.seed, tiny=args.tiny,
    )
    print(report.as_text())
    if args.output:
        write_report(args.output, report)
        print(f"\nreport written to {args.output}")

    failures = region_index_gate_failures(
        report, min_speedup=min_speedup, max_growth_ratio=max_growth_ratio
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_region_index(record_result):
    """Pytest-harness entry (``pytest benchmarks/bench_region_index.py``)."""
    report, (min_speedup, max_growth_ratio) = run_region_index_benchmark()
    record_result("region_index", report.as_text())
    failures = region_index_gate_failures(
        report, min_speedup=min_speedup, max_growth_ratio=max_growth_ratio
    )
    assert not failures, failures


if __name__ == "__main__":
    raise SystemExit(main())
