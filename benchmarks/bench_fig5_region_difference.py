"""Figure 5: average Region Difference of each method's sample sets.

Regenerates all four panels: for OpenAPI and for Linear-LIME (L),
Ridge-LIME (R), the naive method (N) and ZOO (Z) at h in {1e-8, 1e-4,
1e-2}, measure the fraction of interpreted instances whose perturbation
samples left the instance's locally linear region.

Expected shape (paper): RD grows with h for every heuristic method; a
fixed h that is clean on the LMT (large leaf cells) can still be dirty on
the PLNN (exponentially many small cells); OpenAPI's RD is identically 0.
"""

from repro.eval.figures import build_fig567_quality
from repro.eval.reporting import render_table


def test_fig5_region_difference(benchmark, setups, config, record_result):
    def build():
        return [build_fig567_quality(s, config, seed=5) for s in setups]

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    blocks = []
    for result in results:
        rows = [
            [name, cell.avg_rd, cell.n_instances, cell.n_failures]
            for name, cell in result.cells.items()
        ]
        blocks.append(f"### {result.setup_label}")
        blocks.append(render_table(["method", "avg RD", "n", "failures"], rows))
        blocks.append("")
    text = "\n".join(blocks)
    text += (
        "\npaper's Figure 5 shape: RD grows with h; OpenAPI RD = 0 always."
    )
    record_result("fig5_region_difference", text)

    for result in results:
        cells = result.cells
        assert cells["OpenAPI"].avg_rd == 0.0, result.setup_label
        for family in ("L", "R", "N", "Z"):
            small = cells[f"{family}(1e-08)"].avg_rd
            large = cells[f"{family}(1e-02)"].avg_rd
            assert large >= small, (
                f"{result.setup_label}: {family} RD not monotone in h"
            )
