"""Figure 6: Weight Difference of each method's sample sets.

Regenerates all four panels: mean/min/max of the WD metric — the average
L1 distance between the core parameters of the interpreted instance and
those of each perturbation sample — for OpenAPI and {L, R, N, Z} x h.
Seeds match the Figure 5 bench so Figures 5-7 report one experiment, as in
the paper.

Expected shape (paper): WD = 0 wherever RD = 0 (clean samples have
*identical* core parameters, not merely close ones) and WD > 0 exactly
for the contaminated large-h cells.
"""

from repro.eval.figures import build_fig567_quality
from repro.eval.reporting import render_table


def test_fig6_weight_difference(benchmark, setups, config, record_result):
    def build():
        return [build_fig567_quality(s, config, seed=5) for s in setups]

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    blocks = []
    for result in results:
        rows = [
            [name, cell.wd_mean, cell.wd_min, cell.wd_max]
            for name, cell in result.cells.items()
        ]
        blocks.append(f"### {result.setup_label}")
        blocks.append(
            render_table(["method", "WD mean", "WD min", "WD max"], rows)
        )
        blocks.append("")
    text = "\n".join(blocks)
    text += (
        "\npaper's Figure 6 shape: WD = 0 for clean sample sets (same"
        "\nregion => same core parameters), positive only where h crossed"
        "\nregion boundaries; OpenAPI WD = 0 everywhere."
    )
    record_result("fig6_weight_difference", text)

    for result in results:
        cells = result.cells
        assert cells["OpenAPI"].wd_mean == 0.0, result.setup_label
        for name, cell in cells.items():
            if cell.avg_rd == 0.0:
                assert cell.wd_mean == 0.0, (
                    f"{result.setup_label}/{name}: WD > 0 with clean samples"
                )
