"""Figure 7: L1Dist between computed and ground-truth decision features.

Regenerates all four panels: mean/min/max L1 distance between each
method's decision features and the OpenBox/leaf ground truth, for OpenAPI
and {L, R, N, Z} x h (log-scale bars in the paper).  Seeds match the
Figure 5/6 benches.

Expected shape (paper):
* OpenAPI at float-rounding level, orders of magnitude below everything;
* every heuristic method degrades for h large (region crossings, Theorem 1)
  AND for h tiny (softmax saturation / float cancellation);
* Ridge-LIME is pathologically bad at every h — with tiny perturbations
  its penalized fit collapses to a constant model.
"""

from repro.eval.figures import build_fig567_quality
from repro.eval.reporting import render_table


def test_fig7_exactness(benchmark, setups, config, record_result):
    def build():
        return [build_fig567_quality(s, config, seed=5) for s in setups]

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    blocks = []
    for result in results:
        rows = [
            [name, cell.l1_mean, cell.l1_min, cell.l1_max]
            for name, cell in result.cells.items()
        ]
        blocks.append(f"### {result.setup_label}")
        blocks.append(
            render_table(
                ["method", "L1Dist mean", "L1Dist min", "L1Dist max"], rows
            )
        )
        blocks.append("")
    text = "\n".join(blocks)
    text += (
        "\npaper's Figure 7 shape: OpenAPI at rounding error; heuristics"
        "\ndegrade at both ends of the h range; Ridge-LIME bad at every h."
    )
    record_result("fig7_exactness", text)

    for result in results:
        cells = result.cells
        openapi_l1 = cells["OpenAPI"].l1_mean
        assert openapi_l1 < 1e-6, (
            f"{result.setup_label}: OpenAPI not exact ({openapi_l1:.2e})"
        )
        # OpenAPI matches every baseline that happens to sit at the float
        # noise floor and beats everything above it by orders of magnitude.
        NOISE_FLOOR = 1e-8
        for name, cell in cells.items():
            if name == "OpenAPI":
                continue
            assert (
                cell.l1_mean < NOISE_FLOOR
                or openapi_l1 <= cell.l1_mean + 1e-12
            ), f"{result.setup_label}: {name} beat OpenAPI above noise floor"
        # Ridge-LIME pathology: worst L1 among the h=1e-4 cells.
        mid_cells = {k: v for k, v in cells.items() if "1e-04" in k}
        worst_mid = max(mid_cells, key=lambda k: mid_cells[k].l1_mean)
        assert worst_mid.startswith("R("), (
            f"{result.setup_label}: expected Ridge-LIME worst at h=1e-4, "
            f"got {worst_mid}"
        )
