"""Extension bench: reverse-engineering fidelity vs probe budget.

The paper's future-work direction, made measurable: harvest locally linear
regions of an API-hidden PLNN with OpenAPI and chart how faithfully the
reconstructed surrogate mimics the hidden model as the probe budget grows.

Expected shape: label agreement climbs toward 1.0 and probability MAE
falls as more regions are harvested; region discovery shows diminishing
returns (probes increasingly land in known regions).
"""

from repro.eval.reporting import render_table
from repro.extraction import (
    ActiveRegionExplorer,
    PiecewiseSurrogate,
    RegionExplorer,
    fidelity_report,
)


def test_extraction_fidelity_curve(benchmark, setups, config, record_result):
    setup = next(
        s for s in setups
        if s.model_name == "plnn" and s.dataset_name == "synthetic-fashion"
    )
    probes = setup.train.X
    eval_X = setup.test.X

    def run():
        explorer = RegionExplorer(setup.api, seed=6)
        rows = []
        used = 0
        for budget in (5, 15, 40, 80):
            explorer.explore(probes[used:budget])
            used = budget
            surrogate = PiecewiseSurrogate(explorer.records)
            report = fidelity_report(surrogate, setup.api, eval_X)
            rows.append([
                budget,
                explorer.n_regions,
                report.label_agreement,
                report.prob_mae,
                report.prob_max_error,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["probes", "regions", "label agreement", "prob MAE", "prob max err"],
        rows,
    )
    text += (
        "\n\nshape: fidelity rises with probe budget; per-region recovery is"
        "\nexact (gauge-invariant softmax), so all residual error is"
        "\nnearest-anchor routing."
    )
    record_result("extraction_fidelity", text)

    assert rows[-1][2] >= rows[0][2] - 0.05, "fidelity regressed with budget"
    assert rows[-1][2] > 0.85, "final label agreement too low"
    assert rows[-1][1] >= rows[0][1], "region count must be monotone"


def test_extraction_active_vs_random(benchmark, setups, config, record_result):
    """Probing-strategy ablation: boundary-seeking vs uniform random.

    Documents the trade-off measured during development: random probing
    inventories more distinct regions per probe, boundary-seeking places
    anchors where nearest-anchor routing errs (decision boundaries) and
    keeps label fidelity at least competitive at equal budget.
    """
    setup = next(
        s for s in setups
        if s.model_name == "plnn" and s.dataset_name == "synthetic-digits"
    )
    eval_X = setup.test.X
    budget = 30

    def run():
        rows = []
        for name, make in (
            ("random", lambda seed: RegionExplorer(setup.api, seed=seed)),
            ("active(0.5)", lambda seed: ActiveRegionExplorer(
                setup.api, exploit_fraction=0.5, seed=seed)),
        ):
            for seed in (1, 2):
                explorer = make(seed)
                if isinstance(explorer, ActiveRegionExplorer):
                    explorer.explore(budget)
                else:
                    explorer.explore_random(budget)
                report = fidelity_report(
                    PiecewiseSurrogate(explorer.records), setup.api, eval_X
                )
                rows.append([
                    name, seed, explorer.n_regions,
                    report.label_agreement, report.prob_mae,
                ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["strategy", "seed", "regions", "label agreement", "prob MAE"], rows
    )
    text += (
        "\n\nshape: random probing finds more distinct regions; boundary-"
        "\nseeking keeps label fidelity competitive with fewer regions"
        "\n(anchors concentrate where routing errors occur)."
    )
    record_result("extraction_active_vs_random", text)

    by_strategy: dict[str, list] = {}
    for name, _, regions, agreement, _ in rows:
        by_strategy.setdefault(name, []).append((regions, agreement))
    mean_agree = {
        k: sum(a for _, a in v) / len(v) for k, v in by_strategy.items()
    }
    assert mean_agree["active(0.5)"] >= mean_agree["random"] - 0.05
