"""Ablation: the overdetermined certificate vs the naive determined solve.

DESIGN.md calls out the consistency certificate as the design choice that
separates OpenAPI from the naive method.  This bench quantifies it: over a
set of interpreted instances on the PLNN,

* the naive method (no certificate) silently returns wrong answers at a
  measurable rate for moderate h;
* OpenAPI either returns an exact answer or (rarely) refuses — it never
  returns a silently wrong one.

Also reports the empirical residual separation the certificate relies on:
the worst certified residual vs the best rejected residual across all
shrink iterations.
"""

import numpy as np

from repro.core import NaiveInterpreter, OpenAPIInterpreter
from repro.eval.reporting import render_table
from repro.exceptions import CertificateError
from repro.metrics import l1_distance
from repro.models.openbox import ground_truth_decision_features

WRONG_THRESHOLD = 1e-4  # L1Dist above this counts as a wrong interpretation


def test_ablation_certificate(benchmark, setups, config, record_result):
    setup = next(
        s for s in setups
        if s.model_name == "plnn" and s.dataset_name == "synthetic-digits"
    )
    rng = np.random.default_rng(0)
    idx = rng.choice(setup.test.n_samples, size=12, replace=False)
    instances = setup.test.X[idx]
    classes = setup.model.predict(instances)

    def run():
        rows = []
        residuals_accepted: list[float] = []
        residuals_rejected: list[float] = []
        for h in (1e-2, 1e-3):
            naive = NaiveInterpreter(h, seed=1)
            wrong = 0
            for x0, c in zip(instances, classes):
                interp = naive.interpret(setup.api, x0, int(c))
                gt = ground_truth_decision_features(setup.model, x0, int(c))
                if l1_distance(gt, interp.decision_features) > WRONG_THRESHOLD:
                    wrong += 1
            rows.append([f"naive h={h:g}", wrong, 0, len(instances)])

        interpreter = OpenAPIInterpreter(seed=1)
        wrong = refused = 0
        for x0, c in zip(instances, classes):
            try:
                interp = interpreter.interpret(setup.api, x0, int(c))
            except CertificateError:
                refused += 1
                continue
            for record in interpreter.last_run_history_:
                if record.n_certified == record.n_pairs:
                    residuals_accepted.append(record.worst_relative_residual)
                else:
                    residuals_rejected.append(record.worst_relative_residual)
            gt = ground_truth_decision_features(setup.model, x0, int(c))
            if l1_distance(gt, interp.decision_features) > WRONG_THRESHOLD:
                wrong += 1
        rows.append(["OpenAPI", wrong, refused, len(instances)])
        return rows, residuals_accepted, residuals_rejected

    rows, acc, rej = benchmark.pedantic(run, rounds=1, iterations=1)

    text = render_table(
        ["method", "silently wrong", "refused", "instances"], rows
    )
    if acc and rej:
        text += (
            f"\n\ncertificate separation on {setup.label}: worst accepted "
            f"residual {max(acc):.2e} vs best rejected {min(rej):.2e} "
            f"({min(rej) / max(acc):.1e}x gap)"
        )
    text += (
        "\n\nshape: the naive method is silently wrong on a large fraction"
        "\nof instances at h=1e-2 (Theorem 1); OpenAPI is never silently"
        "\nwrong — its only failure mode is an explicit refusal."
    )
    record_result("ablation_certificate", text)

    openapi_row = rows[-1]
    assert openapi_row[1] == 0, "OpenAPI returned a silently wrong answer"
    naive_large_h = rows[0]
    assert naive_large_h[1] > 0, "expected naive h=1e-2 to be wrong somewhere"
    if acc and rej:
        assert min(rej) > max(acc), "certificate bands overlap"
