"""Figure 2: averaged class images and averaged OpenAPI decision features.

Regenerates the paper's Figure 2 panel for the five classes it shows
(boot, pullover, coat, sneaker, t-shirt) on the FMNIST stand-in, for both
the PLNN (second row of the paper's figure) and the LMT (third row).

Expected shape: the heatmaps highlight semantically meaningful garment
parts, and LMT heatmaps are sparser than PLNN ones (the paper's
observation about the L1-regularized leaf classifiers).
"""

import numpy as np

from repro.eval.figures import build_fig2_heatmaps
from repro.eval.reporting import render_heatmap

# Paper's panel: boot, pullover, coat, sneaker, t-shirt.
PAPER_CLASSES = (9, 2, 4, 7, 0)


def test_fig2_heatmaps(benchmark, setups, record_result):
    fashion = [s for s in setups if s.dataset_name == "synthetic-fashion"]

    def build():
        return {
            s.label: build_fig2_heatmaps(
                s, classes=PAPER_CLASSES, n_per_class=4, seed=0
            )
            for s in fashion
        }

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    blocks = []
    sparsity = {}
    for label, entries in results.items():
        blocks.append(f"### {label}")
        for entry in entries:
            heat = entry.average_heatmap
            near_zero = float(np.mean(np.abs(heat) < 0.05 * np.abs(heat).max()))
            sparsity.setdefault(label, []).append(near_zero)
            blocks.append(
                f"\nclass '{entry.class_name}' "
                f"(n={entry.n_instances}, {near_zero:.0%} near-zero weights)"
            )
            blocks.append("average image:")
            blocks.append(render_heatmap(entry.average_image))
            blocks.append("average decision features ('-' = opposes class):")
            blocks.append(render_heatmap(heat))
    text = "\n".join(blocks)
    text += (
        "\n\npaper's Figure 2 shape: heatmaps highlight semantic parts; the"
        "\nL1-trained LMT decision features are sparser than the PLNN's."
    )
    record_result("fig2_heatmaps", text)

    for label, entries in results.items():
        assert len(entries) == len(PAPER_CLASSES), f"{label}: missing classes"
