"""Solve engine throughput: fused batched solve vs the reference loop.

The engine (:mod:`repro.core.engine`) stacks every active instance's
centered/scaled design and multi-RHS log-odds targets into 3-D tensors
and solves one batched normal-equations system per lock-step round; the
reference is the pre-engine implementation — one Python-level ``lstsq``
call per instance.  Both sides produce the full per-pair
:class:`~repro.core.equations.PairSystemSolution` result objects, so the
comparison is honest end to end.

Acceptance gate (enforced at default scale, not ``--tiny``): the engine
must be at least 3x the reference loop at ``n=64, d=16, C=10``
(:data:`repro.core.engine.ENGINE_ACCEPTANCE_POINT`).  The report also
carries the max engine-vs-reference weight difference per configuration,
which must sit at solver rounding error.

The grid constants and the gate live in
:func:`repro.core.engine.run_standard_engine_benchmark`, shared with the
``python -m repro bench-engine`` subcommand.

Run standalone (the CI smoke uses ``--tiny``)::

    PYTHONPATH=src python benchmarks/bench_solve_engine.py --tiny
    PYTHONPATH=src python benchmarks/bench_solve_engine.py \
        --output BENCH_solve_engine.json

or as a pytest bench: ``pytest benchmarks/bench_solve_engine.py``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.engine import (
    benchmark_gate_failures,
    run_standard_engine_benchmark,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="solve engine throughput: batched engine vs reference loop"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=20,
        help="timed repetitions per configuration (best-of reported)",
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke scale (small shapes, no speedup gate)",
    )
    parser.add_argument(
        "--output", default=None,
        help="also write the rows as a JSON artifact (e.g. "
        "BENCH_solve_engine.json)",
    )
    args = parser.parse_args(argv)

    report, threshold = run_standard_engine_benchmark(
        tiny=args.tiny, repeats=args.repeats, seed=args.seed
    )
    print(report.as_text())
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
            handle.write("\n")
        print(f"\nJSON artifact written to {args.output}")

    failures = benchmark_gate_failures(report, threshold)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_solve_engine(record_result):
    """Pytest-harness entry (``pytest benchmarks/bench_solve_engine.py``)."""
    report, threshold = run_standard_engine_benchmark()
    record_result("solve_engine", report.as_text())
    assert benchmark_gate_failures(report, threshold) == []


if __name__ == "__main__":
    raise SystemExit(main())
