"""Ablation: batch (lock-step) interpretation vs sequential round trips.

Real APIs amortize per-request overhead over batched instances, so
latency scales with round trips.  The lock-step batch interpreter gathers
every active instance's next sample set into one request:

* sequential trips: ``n + Σ_i T_i``;
* batch trips: ``1 + max_i T_i``.

Same queries, same certificates, same exact answers.
"""

import numpy as np

from repro.api import PredictionAPI
from repro.core import BatchOpenAPIInterpreter, OpenAPIInterpreter
from repro.eval.reporting import render_table
from repro.metrics import l1_distance
from repro.models.openbox import ground_truth_decision_features


def test_batch_roundtrip_savings(benchmark, setups, config, record_result):
    setup = next(
        s for s in setups
        if s.model_name == "plnn" and s.dataset_name == "synthetic-fashion"
    )
    rng = np.random.default_rng(0)
    idx = rng.choice(setup.test.n_samples, size=10, replace=False)
    X = setup.test.X[idx]

    def run():
        seq_api = PredictionAPI(setup.model)
        sequential = OpenAPIInterpreter(seed=1)
        seq_worst = 0.0
        for x0 in X:
            interp = sequential.interpret(seq_api, x0)
            gt = ground_truth_decision_features(
                setup.model, x0, interp.target_class
            )
            seq_worst = max(seq_worst, l1_distance(gt, interp.decision_features))

        batch_api = PredictionAPI(setup.model)
        result = BatchOpenAPIInterpreter(seed=1).interpret_batch(batch_api, X)
        batch_worst = 0.0
        for x0, interp in zip(X, result.interpretations):
            gt = ground_truth_decision_features(
                setup.model, x0, interp.target_class
            )
            batch_worst = max(
                batch_worst, l1_distance(gt, interp.decision_features)
            )
        return [
            ["sequential", seq_api.request_count, seq_api.query_count, seq_worst],
            ["batch", batch_api.request_count, batch_api.query_count, batch_worst],
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["strategy", "round trips", "queries", "worst L1Dist"], rows
    )
    text += (
        "\n\nshape: the batch interpreter cuts round trips by ~n/ (1 + "
        "\nmax iterations) while keeping query totals comparable and"
        "\nexactness identical."
    )
    record_result("batch_roundtrips", text)

    seq_row, batch_row = rows
    assert batch_row[1] < seq_row[1], "batching did not reduce round trips"
    assert batch_row[3] < 1e-6 and seq_row[3] < 1e-6, "exactness regressed"
