"""Command line for repro-lint.

::

    python -m tools.repro_lint src/                       # text report
    python -m tools.repro_lint src/ --format json         # machine report
    python -m tools.repro_lint src/ --format json --output report.json
    python -m tools.repro_lint src/ --disable determinism
    python -m tools.repro_lint --list-rules

Exit codes: 0 clean, 1 findings, 2 usage error.  ``--output`` writes the
report to a file *in addition to* stdout, so CI can both fail the step
and upload the artifact from one invocation.
"""

from __future__ import annotations

import argparse
import json
import sys

from .engine import lint_paths
from .findings import RULES


def _rule_list(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description=(
            "AST-based invariant checker for this repository: lock "
            "discipline, backend-seam discipline, determinism, "
            "durability, exception boundaries."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="python files or directories to lint"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the report (in the chosen format) to PATH",
    )
    parser.add_argument(
        "--enable", metavar="RULE[,RULE]", default=None,
        help="run only these rules (the suppression meta-rule always runs)",
    )
    parser.add_argument(
        "--disable", metavar="RULE[,RULE]", default=None,
        help="skip these rules",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the known rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, description in RULES.items():
            print(f"{name}: {description}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m tools.repro_lint src/)")

    try:
        report = lint_paths(
            args.paths,
            enable=_rule_list(args.enable),
            disable=_rule_list(args.disable),
        )
    except (FileNotFoundError, ValueError, SyntaxError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    rendered = (
        json.dumps(report.as_dict(), indent=2)
        if args.format == "json"
        else report.as_text()
    )
    print(rendered)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
