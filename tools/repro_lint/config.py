"""Project-specific scoping for the checkers.

The checkers are generic AST passes; everything repo-specific — which
modules sit behind the backend seam, which functions are deliberate
host-side helpers, which modules own durable store paths — lives here
as data.  Module keys are posix path *suffixes* matched against the
linted file's path, so the config works for absolute paths, relative
paths, and test fixtures alike.

Whitelist entries carry a justification string: an empty justification
is rejected at load time, the same standard inline suppressions are
held to.
"""

from __future__ import annotations


DEFAULT_CONFIG: dict = {
    # ------------------------------------------------------------- #
    # backend-seam: modules whose hot-path array math must go through
    # the ArrayBackend kernels (PR 7).  Host-side helper functions are
    # whitelisted by name with a justification.
    "seam_modules": [
        "repro/core/engine.py",
        "repro/serving/cache.py",
        "repro/serving/store.py",
        "repro/serving/index.py",
    ],
    "seam_whitelist": {
        "repro/core/engine.py": {
            "reference_solve_all_pairs": (
                "the pre-engine reference loop is host-side by design; "
                "it is the bitwise oracle the seam is checked against"
            ),
            "_bench_problem": (
                "benchmark problem synthesis; never on the serving path"
            ),
            "run_engine_benchmark": (
                "benchmark harness timing/summary math; never on the "
                "serving path"
            ),
        },
        "repro/serving/cache.py": {
            "claim_errors": (
                "scalar per-entry audit reference for the vectorized "
                "scan; production lookups never call it"
            ),
        },
    },
    # ------------------------------------------------------------- #
    # determinism: modules where *any* wall-clock read is an error
    # unless annotated `# timing-ok: <why>` — these are the solve and
    # wire-format paths whose outputs must be pure functions of
    # (seed, x0) (PR 8).  Seed-flow checks apply everywhere.
    "wallclock_modules": [
        "repro/core/sampling.py",
        "repro/core/engine.py",
        "repro/core/openapi.py",
        "repro/core/rounds.py",
        "repro/core/equations.py",
        "repro/core/batch.py",
        "repro/serving/worker.py",
        "repro/serving/index.py",
    ],
    # ------------------------------------------------------------- #
    # durability: modules that own crash-safe store paths (PR 5/8).
    # os.replace there must be preceded by an os.fsync in the same
    # function; open()-for-write is only allowed in the whitelisted
    # tmp+replace / append helpers.
    "store_modules": [
        "repro/serving/store.py",
        "repro/serving/gateway.py",
    ],
    "store_write_whitelist": {
        "repro/serving/store.py": {
            "_acquire_writer_lock": (
                "opens the advisory-lock sentinel file, not record data; "
                "contents are never read"
            ),
            "_persist_index": (
                "the tmp+fsync+os.replace helper itself — the one "
                "sanctioned index publish path"
            ),
            "append": (
                "segment append; fsynced before the index that points "
                "at it is published"
            ),
            "compact": (
                "rewrites the live set into a fresh segment, fsynced "
                "before the index rename adopts it"
            ),
            "_recover_tail": (
                "recovery truncation of a torn trailing frame; "
                "discards bytes, never publishes them"
            ),
        },
        "repro/serving/gateway.py": {
            "_popen_worker": (
                "per-worker stderr log capture (initial spawn and "
                "supervisor respawn); diagnostics, not store data"
            ),
        },
    },
}


def validate_config(config: dict) -> None:
    """Reject whitelist entries whose justification is empty.

    The config is the widest escape hatch the linter has; holding it to
    the same justified-suppression standard keeps 'just whitelist it'
    from becoming the path of least resistance.
    """
    for key in ("seam_whitelist", "store_write_whitelist"):
        for module, entries in config.get(key, {}).items():
            for func, why in entries.items():
                if not str(why).strip():
                    raise ValueError(
                        f"config {key}[{module!r}][{func!r}] has an empty "
                        "justification"
                    )
