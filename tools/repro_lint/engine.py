"""The lint engine: file model, annotation parsing, suppressions, runner.

One :class:`SourceFile` is built per linted file — AST plus the comment
map the checkers read their annotations from (``guarded-by``,
``requires-lock``, ``timing-ok``, ``boundary``).  The engine runs every
enabled checker, then applies inline suppressions::

    # repro-lint: disable=<rule>[,<rule>...] <justification>

A suppression silences findings of the named rules on its own line and
the line directly below it (so it can ride the line above a long
statement).  Suppressions are themselves linted: an unknown rule name or
a missing/too-short justification is a ``suppression`` finding, and the
``suppression`` rule can neither be disabled nor suppressed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .config import DEFAULT_CONFIG, validate_config
from .findings import RULES, UNSUPPRESSABLE, Finding

SUPPRESS_RE = re.compile(r"repro-lint:\s*(.*)$")
DISABLE_RE = re.compile(r"^disable=([\w,\-]+)\s*(.*)$", re.DOTALL)
#: Justifications (suppressions, timing-ok, boundary) must carry at
#: least this many characters of actual text — enough to force a reason,
#: short enough to never be the obstacle.
MIN_JUSTIFICATION = 8

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


class SourceFile:
    """One parsed file: text, AST, parent links, and comment map."""

    def __init__(self, path: Path, display_path: str, text: str):
        self.path = path
        #: Path string used in findings (as the caller spelled it).
        self.display_path = display_path
        #: Posix-style string used for config suffix matching.
        self.match_path = path.as_posix()
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        self.comments: dict[int, str] = _extract_comments(text)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # ---------------------------------------------------------------- #
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk parent links from ``node`` (exclusive) to the module."""
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        """Nearest enclosing def/lambda, or ``None`` at module/class level."""
        for anc in self.ancestors(node):
            if isinstance(anc, _FUNC_NODES):
                return anc
        return None

    def enclosing_function_names(self, node: ast.AST) -> set[str]:
        """Names of every def on the ancestor path (for whitelists)."""
        return {
            anc.name
            for anc in self.ancestors(node)
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    # ---------------------------------------------------------------- #
    def annotation(self, line: int, marker: str) -> str | None:
        """The payload of ``# <marker>: <payload>`` on ``line``, if any."""
        comment = self.comments.get(line)
        if comment is None:
            return None
        m = re.search(rf"{re.escape(marker)}:\s*(.*)$", comment)
        return m.group(1).strip() if m else None

    def in_module(self, suffixes: Iterable[str]) -> bool:
        return any(self.match_path.endswith(suffix) for suffix in suffixes)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.display_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


def _extract_comments(text: str) -> dict[int, str]:
    """Map line number -> comment text (without the leading ``#``)."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string.lstrip("#").strip()
    except tokenize.TokenError:
        # A file that tokenizes but does not fully close (rare) still
        # yields the comments seen before the error.
        pass
    return comments


# -------------------------------------------------------------------- #
# Suppressions
# -------------------------------------------------------------------- #
@dataclass
class _Suppression:
    line: int
    rules: set[str]
    justification: str


def _parse_suppressions(
    sf: SourceFile,
) -> tuple[dict[int, _Suppression], list[Finding]]:
    """All well-formed suppressions by line, plus findings for bad ones."""
    by_line: dict[int, _Suppression] = {}
    bad: list[Finding] = []

    def meta(line: int, message: str) -> Finding:
        return Finding(
            path=sf.display_path, line=line, col=0,
            rule="suppression", message=message,
        )

    for line, comment in sorted(sf.comments.items()):
        m = SUPPRESS_RE.search(comment)
        if m is None:
            continue
        body = m.group(1).strip()
        dm = DISABLE_RE.match(body)
        if dm is None:
            bad.append(meta(
                line,
                "malformed repro-lint comment; expected "
                "`# repro-lint: disable=<rule>[,<rule>] <justification>`",
            ))
            continue
        rules = {r.strip() for r in dm.group(1).split(",") if r.strip()}
        justification = dm.group(2).strip()
        unknown = sorted(rules - set(RULES))
        if unknown:
            bad.append(meta(
                line,
                f"suppression names unknown rule(s) {unknown}; known rules: "
                f"{sorted(RULES)}",
            ))
            continue
        banned = sorted(rules & UNSUPPRESSABLE)
        if banned:
            bad.append(meta(
                line, f"rule(s) {banned} cannot be suppressed",
            ))
            continue
        if len(justification) < MIN_JUSTIFICATION:
            bad.append(meta(
                line,
                f"suppression of {sorted(rules)} needs a justification of "
                f"at least {MIN_JUSTIFICATION} characters explaining why "
                "the invariant does not apply here",
            ))
            continue
        by_line[line] = _Suppression(line, rules, justification)
    return by_line, bad


# -------------------------------------------------------------------- #
# Runner
# -------------------------------------------------------------------- #
@dataclass
class LintReport:
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def as_dict(self) -> dict:
        return {
            "tool": "repro-lint",
            "files_checked": self.files_checked,
            "rules": self.rules,
            "n_findings": len(self.findings),
            "suppressed": self.suppressed,
            "findings": [f.as_dict() for f in self.findings],
        }

    def as_text(self) -> str:
        lines = [f.as_text() for f in self.findings]
        lines.append(
            f"repro-lint: {len(self.findings)} finding(s), "
            f"{self.suppressed} suppressed, "
            f"{self.files_checked} file(s) checked"
        )
        return "\n".join(lines)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")


def resolve_rules(
    enable: Iterable[str] | None = None,
    disable: Iterable[str] | None = None,
) -> list[str]:
    """The active rule list; the ``suppression`` meta-rule is always on."""
    for name in list(enable or []) + list(disable or []):
        if name not in RULES:
            raise ValueError(
                f"unknown rule {name!r}; known rules: {sorted(RULES)}"
            )
    active = set(enable) if enable else set(RULES)
    active -= set(disable or [])
    active |= UNSUPPRESSABLE
    return sorted(active)


def lint_file(
    sf: SourceFile,
    rules: Iterable[str],
    config: dict,
) -> tuple[list[Finding], int]:
    """Run the checkers for ``rules`` over one file, apply suppressions."""
    from .checkers import CHECKERS

    suppressions, meta_findings = _parse_suppressions(sf)
    raw: list[Finding] = []
    for rule in rules:
        checker = CHECKERS.get(rule)
        if checker is not None:
            raw.extend(checker(sf, config))

    kept: list[Finding] = list(meta_findings)
    suppressed = 0
    for finding in raw:
        covering = None
        for line in (finding.line, finding.line - 1):
            sup = suppressions.get(line)
            if sup is not None and finding.rule in sup.rules:
                covering = sup
                break
        if covering is None:
            kept.append(finding)
        else:
            suppressed += 1
    return kept, suppressed


def lint_paths(
    paths: Iterable[str | Path],
    *,
    enable: Iterable[str] | None = None,
    disable: Iterable[str] | None = None,
    config: dict | None = None,
) -> LintReport:
    """Lint files/directories and return the aggregated report."""
    config = config if config is not None else DEFAULT_CONFIG
    validate_config(config)
    rules = resolve_rules(enable, disable)
    report = LintReport(rules=rules)
    for path in iter_python_files(paths):
        sf = SourceFile(path, str(path), path.read_text())
        findings, suppressed = lint_file(sf, rules, config)
        report.findings.extend(findings)
        report.suppressed += suppressed
        report.files_checked += 1
    report.findings.sort()
    return report
