"""Finding record and the rule registry.

Every checker reports :class:`Finding` rows tagged with one of the rule
names in :data:`RULES`; the engine sorts, suppresses, and renders them.
Rule names are stable identifiers — they appear in suppression comments
(``# repro-lint: disable=<rule> <justification>``), in the JSON report,
and in CI logs, so renaming one is a breaking change.
"""

from __future__ import annotations

from dataclasses import dataclass


#: rule name -> one-line description (shown by ``--list-rules``).
RULES: dict[str, str] = {
    "lock-discipline": (
        "state annotated `# guarded-by: <lock>` must only be read or "
        "mutated inside `with <lock>:` (or in a function annotated "
        "`# requires-lock: <lock>`)"
    ),
    "backend-seam": (
        "seam-covered modules must route array math (np.linalg.*, "
        "einsum, argpartition, the @ operator) through the ArrayBackend "
        "kernels, not raw numpy"
    ),
    "determinism": (
        "no unseeded RNGs, no global-state randomness, and no wall-clock "
        "values feeding seeds or solve/wire paths (timing meters need a "
        "`# timing-ok: <why>` annotation)"
    ),
    "durability": (
        "store-owned index publishes must fsync before os.replace, and "
        "store modules may not open files for writing outside the "
        "whitelisted tmp+replace helpers"
    ),
    "exception-boundary": (
        "bare `except:` is forbidden; `except Exception`/`BaseException` "
        "must re-raise or carry a `# boundary: <justification>` comment"
    ),
    "suppression": (
        "`# repro-lint: disable=...` comments and checker annotations "
        "must name known rules and carry a real justification"
    ),
}

#: The meta-rule cannot be turned off or suppressed — it polices the
#: escape hatches themselves.
UNSUPPRESSABLE = frozenset({"suppression"})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def as_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
