"""exception-boundary: broad handlers must be deliberate and say why.

A bare ``except:`` is forbidden outright (it eats ``KeyboardInterrupt``
and ``SystemExit``).  ``except Exception`` / ``except BaseException``
(alone or inside a tuple) is allowed in exactly two shapes:

* **cleanup-and-reraise** — the handler body re-raises (a bare ``raise``
  or ``raise <the bound name>``): it observes the failure, it does not
  swallow it; or
* **a justified boundary** — the ``except`` line (or the line directly
  above) carries ``# boundary: <justification>`` explaining why this is
  a legitimate catch-all edge (worker loops that must outlive any
  request, envelope-producing service boundaries, ...).

The justification is held to the same minimum length as suppressions —
"boundary: yes" does not count as a reason.
"""

from __future__ import annotations

import ast

from ..engine import MIN_JUSTIFICATION, SourceFile
from ..findings import Finding

RULE = "exception-boundary"
_BROAD = {"Exception", "BaseException"}


def _broad_names(handler: ast.ExceptHandler) -> list[str]:
    nodes: list[ast.AST]
    if handler.type is None:
        return []
    if isinstance(handler.type, ast.Tuple):
        nodes = list(handler.type.elts)
    else:
        nodes = [handler.type]
    return [n.id for n in nodes if isinstance(n, ast.Name) and n.id in _BROAD]


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            if node.exc is None:
                return True
            if (
                handler.name is not None
                and isinstance(node.exc, ast.Name)
                and node.exc.id == handler.name
            ):
                return True
    return False


def _boundary_comment(sf: SourceFile, handler: ast.ExceptHandler) -> str | None:
    for line in (handler.lineno, handler.lineno - 1):
        payload = sf.annotation(line, "boundary")
        if payload is not None:
            return payload
    return None


def check(sf: SourceFile, config: dict) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            findings.append(sf.finding(
                RULE, node,
                "bare `except:` swallows KeyboardInterrupt/SystemExit; "
                "catch explicit exception types",
            ))
            continue
        broad = _broad_names(node)
        if not broad:
            continue
        if _reraises(node):
            continue
        justification = _boundary_comment(sf, node)
        if justification is None:
            findings.append(sf.finding(
                RULE, node,
                f"`except {broad[0]}` neither re-raises nor carries a "
                "`# boundary: <justification>` comment; broad catches "
                "must be deliberate, documented boundaries",
            ))
        elif len(justification) < MIN_JUSTIFICATION:
            findings.append(sf.finding(
                "suppression", node,
                "boundary justification needs at least "
                f"{MIN_JUSTIFICATION} characters explaining why a broad "
                "catch is correct here",
            ))
    return findings
