"""durability: crash-safe publish discipline for store-owned paths.

PR 5's recovery contract is *fsync the data, then atomically rename the
index that points at it*: an ``os.replace`` that is not preceded by an
``os.fsync`` can publish an index whose bytes never reached disk, and a
plain ``open(path, "w")`` write can tear under SIGKILL.  Inside the
store-owned modules (``config["store_modules"]``):

* every ``os.replace(...)`` must be *dominated* by an ``os.fsync(...)``
  in the same function — approximated lexically as "an fsync call on an
  earlier line of the same function", which accepts the repo's
  ``if self.fsync: os.fsync(...)`` test knob (the knob is an explicit,
  documented opt-out, not an accident this checker should chase);
* every ``open()`` whose mode can write (``w``/``a``/``x``/``+``) must
  sit inside a function whitelisted in
  ``config["store_write_whitelist"]`` (justification required) — new
  write paths must go through the tmp+fsync+replace helpers or be
  reviewed into the whitelist.
"""

from __future__ import annotations

import ast

from ..engine import SourceFile
from ..findings import Finding
from ._util import call_name

RULE = "durability"
_WRITE_MODE_CHARS = set("wax+")


def _functions(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _mode_of(call: ast.Call) -> str | None:
    """The literal mode of an ``open`` call (``None`` when dynamic)."""
    mode_node: ast.AST | None = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(
        mode_node.value, str
    ):
        return mode_node.value
    return None


def _write_whitelist(sf: SourceFile, config: dict) -> set[str]:
    for module, entries in config.get("store_write_whitelist", {}).items():
        if sf.match_path.endswith(module):
            return set(entries)
    return set()


def check(sf: SourceFile, config: dict) -> list[Finding]:
    if not sf.in_module(config.get("store_modules", [])):
        return []
    findings: list[Finding] = []
    whitelist = _write_whitelist(sf, config)

    for func in _functions(sf.tree):
        calls = [
            n for n in ast.walk(func)
            if isinstance(n, ast.Call)
            # Stay within this def: nested defs are checked on their own.
            and sf.enclosing_function(n) is func
        ]
        fsync_lines = [
            c.lineno for c in calls if call_name(c) == ["os", "fsync"]
        ]
        for call in calls:
            chain = call_name(call)
            if chain == ["os", "replace"]:
                if not any(line < call.lineno for line in fsync_lines):
                    findings.append(sf.finding(
                        RULE, call,
                        "`os.replace` publish is not dominated by an "
                        "`os.fsync` in this function; an index can point "
                        "at bytes that never reached disk (fsync the data "
                        "file first, then rename)",
                    ))
            elif chain == ["open"]:
                mode = _mode_of(call)
                if mode is None:
                    findings.append(sf.finding(
                        RULE, call,
                        "`open()` with a dynamic mode in a store-owned "
                        "module; use a literal mode so write paths stay "
                        "statically auditable",
                    ))
                elif _WRITE_MODE_CHARS & set(mode) and (
                    func.name not in whitelist
                ):
                    findings.append(sf.finding(
                        RULE, call,
                        f"writable `open(..., {mode!r})` outside the "
                        "store's tmp+fsync+replace helpers; route the "
                        "write through them or whitelist "
                        f"`{func.name}` in tools/repro_lint/config.py "
                        "with a justification",
                    ))
    return findings
