"""Small AST helpers shared by the checkers."""

from __future__ import annotations

import ast


def dotted_chain(node: ast.AST) -> list[str] | None:
    """``np.linalg.solve`` -> ``["np", "linalg", "solve"]``.

    Returns ``None`` when the expression is not a plain dotted name
    (calls, subscripts, etc. anywhere in the chain).
    """
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        parts.reverse()
        return parts
    return None


def call_name(call: ast.Call) -> list[str] | None:
    """The dotted chain of a call's function, if it is a plain name."""
    return dotted_chain(call.func)


def is_constant_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def expr_mentions_self_attr(expr: ast.AST, attr: str) -> bool:
    """Whether ``self.<attr>`` appears anywhere inside ``expr``.

    Matches through subscripts/calls, so ``with self._locks[si]:`` counts
    as holding ``_locks``.
    """
    for sub in ast.walk(expr):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr == attr
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            return True
    return False


def expr_mentions_name(expr: ast.AST, name: str) -> bool:
    """Whether the bare name appears anywhere inside ``expr``."""
    return any(
        isinstance(sub, ast.Name) and sub.id == name
        for sub in ast.walk(expr)
    )
