"""lock-discipline: a lightweight static race detector.

State is declared guarded at its assignment site::

    self._query_count = 0  # guarded-by: _meter_lock

From then on, every read or mutation of ``self._query_count`` inside the
same class must sit lexically inside ``with self._meter_lock:`` (any
expression mentioning the lock attribute counts, so per-shard
``with self._locks[si]:`` works), or inside a function annotated as
called with the lock already held::

    def _rows_pending(self) -> int:  # requires-lock: _cv

Module-level globals use the same annotation with a bare lock name
(``_instances: dict = {}  # guarded-by: _lock`` ... ``with _lock:``).

Scope and soundness, honestly stated:

* The declaring function (usually ``__init__``) is exempt — construction
  happens-before publication.
* The analysis is lexical and intra-class/intra-file: a nested def or
  lambda under a ``with`` runs *later*, so the walk stops at function
  boundaries and the nested function needs its own ``requires-lock``.
* ``requires-lock`` is trusted, not verified at call sites — it is an
  assumption marker, the same contract GUARDED_BY/REQUIRES annotations
  carry in compiled-world race checkers.

This is exactly the analysis that would have flagged the PR 4 meter
race: an unsynchronized ``self._query_count += n`` check-then-commit in
``PredictionAPI._score_blocks`` losing updates under 32-thread load.
"""

from __future__ import annotations

import ast

from ..engine import MIN_JUSTIFICATION, SourceFile
from ..findings import Finding
from ._util import expr_mentions_name, expr_mentions_self_attr

RULE = "lock-discipline"
_FUNC = (ast.FunctionDef, ast.AsyncFunctionDef)
_FUNCISH = _FUNC + (ast.Lambda,)


def _guard_annotation(sf: SourceFile, node: ast.AST) -> str | None:
    return sf.annotation(node.lineno, "guarded-by")


def _requires_locks(sf: SourceFile, func: ast.AST) -> set[str]:
    """Locks a def is annotated as holding on entry."""
    if not isinstance(func, _FUNC):
        return set()
    payload = sf.annotation(func.lineno, "requires-lock")
    if payload is None:
        return set()
    return {part.strip() for part in payload.split(",") if part.strip()}


def _assign_targets(node: ast.AST) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return node.targets
    if isinstance(node, ast.AnnAssign) and node.target is not None:
        return [node.target]
    return []


def _held_locks_self(sf: SourceFile, node: ast.AST, lock: str) -> bool:
    """Is ``node`` lexically under ``with self.<lock>:`` (stopping at
    function boundaries) or inside a def that requires the lock?"""
    cur = node
    for anc in sf.ancestors(node):
        if isinstance(anc, (ast.With, ast.AsyncWith)):
            # Only count the with-block body, not the context expression
            # itself (``with self._lock:`` evaluates self._lock unlocked).
            if cur in anc.body and any(
                expr_mentions_self_attr(item.context_expr, lock)
                for item in anc.items
            ):
                return True
        if isinstance(anc, _FUNCISH):
            return lock in _requires_locks(sf, anc)
        cur = anc
    return False


def _held_locks_global(sf: SourceFile, node: ast.AST, lock: str) -> bool:
    cur = node
    for anc in sf.ancestors(node):
        if isinstance(anc, (ast.With, ast.AsyncWith)):
            if cur in anc.body and any(
                expr_mentions_name(item.context_expr, lock)
                for item in anc.items
            ):
                return True
        if isinstance(anc, _FUNCISH):
            return lock in _requires_locks(sf, anc)
        cur = anc
    return False


def check(sf: SourceFile, config: dict) -> list[Finding]:
    findings: list[Finding] = []
    findings.extend(_check_classes(sf))
    findings.extend(_check_module_globals(sf))
    return findings


# -------------------------------------------------------------------- #
def _check_classes(sf: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    for cls in (n for n in ast.walk(sf.tree) if isinstance(n, ast.ClassDef)):
        # Pass 1: collect guarded self-attributes and where they were
        # declared (that function is exempt for that attribute).
        guards: dict[str, str] = {}
        declared_in: dict[str, ast.AST | None] = {}
        for node in ast.walk(cls):
            for target in _assign_targets(node):
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    lock = _guard_annotation(sf, node)
                    if lock is None:
                        continue
                    if not lock or len(lock.split()) != 1:
                        findings.append(sf.finding(
                            "suppression", node,
                            "guarded-by annotation must name exactly one "
                            f"lock attribute, got {lock!r}",
                        ))
                        continue
                    guards[target.attr] = lock
                    declared_in[target.attr] = sf.enclosing_function(node)
        if not guards:
            continue
        # Pass 2: every other access to a guarded attribute must hold
        # its lock.
        for node in ast.walk(cls):
            if not (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in guards
            ):
                continue
            lock = guards[node.attr]
            func = sf.enclosing_function(node)
            if func is None or func is declared_in[node.attr]:
                continue
            if _held_locks_self(sf, node, lock):
                continue
            action = "mutated" if isinstance(
                node.ctx, (ast.Store, ast.Del)
            ) else "read"
            fname = getattr(func, "name", "<lambda>")
            findings.append(sf.finding(
                RULE, node,
                f"`self.{node.attr}` is guarded by `self.{lock}` but is "
                f"{action} in `{cls.name}.{fname}` outside "
                f"`with self.{lock}:` (annotate the def with "
                f"`# requires-lock: {lock}` if the caller holds it)",
            ))
    return findings


# -------------------------------------------------------------------- #
def _check_module_globals(sf: SourceFile) -> list[Finding]:
    guards: dict[str, str] = {}
    for node in sf.tree.body:
        for target in _assign_targets(node):
            if isinstance(target, ast.Name):
                lock = _guard_annotation(sf, node)
                if lock:
                    guards[target.id] = lock.split()[0]
    if not guards:
        return []
    findings: list[Finding] = []
    for node in ast.walk(sf.tree):
        if not (isinstance(node, ast.Name) and node.id in guards):
            continue
        func = sf.enclosing_function(node)
        if func is None:
            continue  # module top level runs at import, pre-threads
        lock = guards[node.id]
        if _held_locks_global(sf, node, lock):
            continue
        action = "mutated" if isinstance(
            node.ctx, (ast.Store, ast.Del)
        ) else "read"
        fname = getattr(func, "name", "<lambda>")
        findings.append(sf.finding(
            RULE, node,
            f"module global `{node.id}` is guarded by `{lock}` but is "
            f"{action} in `{fname}` outside `with {lock}:` (annotate the "
            f"def with `# requires-lock: {lock}` if the caller holds it)",
        ))
    return findings
