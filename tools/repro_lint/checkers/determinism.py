"""determinism: every solve must stay a pure function of ``(seed, x0)``.

PR 8's fleet-vs-sequential byte-identity rests on nothing nondeterministic
leaking into the sample streams or the wire format.  Three sub-checks:

1. **Unseeded generators** — ``np.random.default_rng()`` /
   ``default_rng(None)`` / ``np.random.RandomState()`` with no seed are
   errors *everywhere*: an OS-entropy generator can never reproduce.
2. **Global-state randomness** — stdlib ``random.*`` calls and the
   legacy ``np.random.<fn>`` module-level API are errors everywhere;
   shared hidden state breaks per-instance stream isolation even when
   seeded.
3. **Wall-clock values** — a wall-clock read (``time.time``,
   ``perf_counter``, ``datetime.now``, ...) is an error when it (a)
   flows directly into a seed position (an argument to
   ``default_rng``/``SeedSequence``/``as_generator``/``spawn_generators``
   or to a ``seed=`` keyword, or an assignment to a ``*seed*`` name) —
   anywhere; or (b) appears at all inside the solve/wire modules listed
   in ``config["wallclock_modules"]``, unless the line carries a
   ``# timing-ok: <why>`` annotation (timing *meters* are legitimate;
   the annotation makes each one a reviewed decision).
"""

from __future__ import annotations

import ast

from ..engine import MIN_JUSTIFICATION, SourceFile
from ..findings import Finding
from ._util import call_name, is_constant_none

RULE = "determinism"

_NP_ALIASES = {"np", "numpy"}
_LEGACY_NP_RANDOM = {
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "bytes",
}
_WALLCLOCK_CHAINS = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"),
    ("datetime", "datetime", "now"), ("datetime", "datetime", "utcnow"),
}
_SEED_SINKS = {"default_rng", "SeedSequence", "as_generator",
               "spawn_generators", "seed", "RandomState"}


def _imports_stdlib_random(sf: SourceFile) -> set[str]:
    """Aliases under which the stdlib ``random`` module is importable."""
    aliases: set[str] = set()
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
    return aliases


def _is_wallclock(chain: list[str] | None) -> bool:
    return chain is not None and tuple(chain) in _WALLCLOCK_CHAINS


def check(sf: SourceFile, config: dict) -> list[Finding]:
    findings: list[Finding] = []
    random_aliases = _imports_stdlib_random(sf)
    wallclock_scoped = sf.in_module(config.get("wallclock_modules", []))

    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = call_name(node)

        # 1. unseeded generators -------------------------------------- #
        if chain and chain[-1] in ("default_rng", "RandomState") and (
            len(chain) == 1 or chain[0] in _NP_ALIASES
        ):
            unseeded = not node.args and not node.keywords
            if node.args and is_constant_none(node.args[0]):
                unseeded = True
            if any(
                kw.arg == "seed" and is_constant_none(kw.value)
                for kw in node.keywords
            ):
                unseeded = True
            if unseeded:
                findings.append(sf.finding(
                    RULE, node,
                    f"`{'.'.join(chain)}()` without a seed draws OS "
                    "entropy; every generator must derive from an "
                    "explicit seed so solves replay byte-identically",
                ))
            continue

        # 2. global-state randomness ---------------------------------- #
        if (
            chain
            and len(chain) == 2
            and chain[0] in random_aliases
        ):
            findings.append(sf.finding(
                RULE, node,
                f"stdlib `{'.'.join(chain)}(...)` uses hidden global "
                "state; use a seeded np.random.Generator threaded through "
                "the call instead",
            ))
            continue
        if (
            chain
            and len(chain) == 3
            and chain[0] in _NP_ALIASES
            and chain[1] == "random"
            and chain[2] in _LEGACY_NP_RANDOM
        ):
            findings.append(sf.finding(
                RULE, node,
                f"legacy `{'.'.join(chain)}(...)` mutates numpy's global "
                "RNG state; use a seeded Generator instance",
            ))
            continue

        # 3. wall-clock reads ----------------------------------------- #
        if _is_wallclock(chain):
            flow = _seed_flow(sf, node)
            if flow is not None:
                findings.append(sf.finding(
                    RULE, node,
                    f"wall-clock `{'.'.join(chain)}()` flows into "
                    f"{flow}; seeds must come from configuration, never "
                    "the clock",
                ))
            elif wallclock_scoped:
                why = sf.annotation(node.lineno, "timing-ok")
                if why is None:
                    findings.append(sf.finding(
                        RULE, node,
                        f"wall-clock `{'.'.join(chain)}()` inside a "
                        "solve/wire-format module; annotate the line "
                        "`# timing-ok: <why>` if this is a timing meter "
                        "that never reaches results",
                    ))
                elif len(why) < MIN_JUSTIFICATION:
                    findings.append(sf.finding(
                        "suppression", node,
                        "timing-ok annotation needs a justification of "
                        f"at least {MIN_JUSTIFICATION} characters",
                    ))
    return findings


def _seed_flow(sf: SourceFile, clock_call: ast.Call) -> str | None:
    """How the clock value reaches a seed, if it does (1-2 hops up)."""
    node: ast.AST = clock_call
    for anc in sf.ancestors(clock_call):
        if isinstance(anc, ast.keyword):
            if anc.arg and "seed" in anc.arg.lower():
                return f"keyword `{anc.arg}=`"
            node = anc
            continue
        if isinstance(anc, ast.Call):
            chain = call_name(anc)
            if chain and chain[-1] in _SEED_SINKS and (
                node in anc.args or node in anc.keywords
            ):
                return f"`{'.'.join(chain)}(...)`"
            return None
        if isinstance(anc, ast.Assign):
            for target in anc.targets:
                if isinstance(target, ast.Name) and "seed" in target.id.lower():
                    return f"assignment to `{target.id}`"
            return None
        if isinstance(anc, (ast.BinOp, ast.UnaryOp, ast.IfExp)):
            node = anc
            continue  # arithmetic on the clock value still carries it
        return None
    return None
