"""backend-seam: raw numpy math in seam-covered modules is an error.

PR 7 put every hot-path kernel behind the ``ArrayBackend`` seam so the
same code serves numpy, cupy, and torch.  The ``StubBackend`` catches
bypasses *dynamically* — but only on code paths a test happens to
execute.  This checker closes the gap statically: inside the
seam-covered modules (``config["seam_modules"]``), the non-portable
calls —

* ``np.linalg.*`` (solve / lstsq / eigvalsh / norm / ...),
* ``np.einsum`` and the other fused-product entry points,
* ``argpartition`` (function or method form),
* the matmul operator ``@``

— are findings unless they sit inside a whitelisted host-side helper
(``config["seam_whitelist"]``, justification required) or carry an
inline suppression.  Exception *types* like ``np.linalg.LinAlgError``
are attribute loads, not calls, and are not flagged.
"""

from __future__ import annotations

import ast

from ..engine import SourceFile
from ..findings import Finding
from ._util import dotted_chain

RULE = "backend-seam"

_NP_ALIASES = {"np", "numpy"}
#: numpy top-level functions that are device-divergent math.
_SEAM_FUNCS = {
    "einsum", "argpartition", "matmul", "dot", "tensordot",
    "inner", "vdot", "outer",
}
#: method spellings of the same (``stacks.argpartition(k)``).
_SEAM_METHODS = {"argpartition", "dot"}


def _whitelisted(sf: SourceFile, node: ast.AST, config: dict) -> bool:
    for module, entries in config.get("seam_whitelist", {}).items():
        if sf.match_path.endswith(module):
            return bool(sf.enclosing_function_names(node) & set(entries))
    return False


def check(sf: SourceFile, config: dict) -> list[Finding]:
    if not sf.in_module(config.get("seam_modules", [])):
        return []
    findings: list[Finding] = []

    def flag(node: ast.AST, what: str) -> None:
        if _whitelisted(sf, node, config):
            return
        findings.append(sf.finding(
            RULE, node,
            f"{what} bypasses the ArrayBackend seam; route it through a "
            "backend kernel/adapter, or whitelist the enclosing function "
            "as a host-side helper in tools/repro_lint/config.py with a "
            "justification",
        ))

    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Call):
            chain = dotted_chain(node.func)
            if chain and chain[0] in _NP_ALIASES:
                if len(chain) >= 3 and chain[1] == "linalg":
                    flag(node, f"`{'.'.join(chain)}(...)`")
                    continue
                if len(chain) == 2 and chain[1] in _SEAM_FUNCS:
                    flag(node, f"`{'.'.join(chain)}(...)`")
                    continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SEAM_METHODS
                and not (chain and chain[0] in _NP_ALIASES)
            ):
                flag(node, f"method call `.{node.func.attr}(...)`")
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            flag(node, "the `@` matmul operator")
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.op, ast.MatMult
        ):
            flag(node, "the `@=` matmul operator")
    return findings
