"""The five checkers, keyed by rule name.

Each checker is a function ``(SourceFile, config) -> list[Finding]``;
the engine runs the ones whose rule is enabled.  A checker may also emit
``suppression`` findings for malformed annotations it owns (guarded-by
without a lock name, timing-ok/boundary without a real justification).
"""

from __future__ import annotations

from . import boundaries, determinism, durability, locks, seam

CHECKERS = {
    locks.RULE: locks.check,
    seam.RULE: seam.check,
    determinism.RULE: determinism.check,
    durability.RULE: durability.check,
    boundaries.RULE: boundaries.check,
}

__all__ = ["CHECKERS"]
