"""repro-lint: AST-based invariant checker for this repository.

Five project-specific rules, stdlib-``ast`` only (no third-party deps),
wired into CI so discipline violations fail review instead of
production:

* ``lock-discipline`` — ``# guarded-by:``-annotated state accessed
  outside its ``with <lock>:`` block (the PR 4 meter race, statically);
* ``backend-seam`` — raw numpy math inside the PR 7 seam-covered
  modules;
* ``determinism`` — unseeded/global RNGs anywhere, wall-clock values
  feeding seeds or solve/wire paths (PR 8's byte-identity);
* ``durability`` — ``os.replace`` publishes without a dominating
  ``os.fsync``, bare writable ``open()`` on store-owned paths (PR 5);
* ``exception-boundary`` — bare ``except:``, and broad catches without
  a ``# boundary:`` justification.

See ``docs/invariants.md`` for the catalog of enforced invariants and
how to suppress a finding with a justification.
"""

from .engine import LintReport, SourceFile, lint_file, lint_paths
from .findings import RULES, Finding

__all__ = [
    "Finding",
    "LintReport",
    "RULES",
    "SourceFile",
    "lint_file",
    "lint_paths",
]
