"""Repository tooling, laid out as a package so every tool is invoked
the same way::

    python -m tools.repro_lint src/
    python -m tools.check_markdown_links README.md docs/ examples/

Each tool is a subpackage with a ``__main__`` entry point; nothing in
here imports the ``repro`` runtime, so the tools run on a bare python
(stdlib only) checkout.
"""
