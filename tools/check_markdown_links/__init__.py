#!/usr/bin/env python
"""Markdown link checker for the repository docs (stdlib only).

Validates every inline link/image ``[text](target)`` and reference
definition ``[label]: target`` in the given markdown files:

* relative paths must exist on disk (resolved against the file's
  directory), optional ``#fragment`` checked against the target file's
  headings when it is markdown;
* in-file anchors ``#heading`` must match a heading slug (GitHub-style:
  lowercase, punctuation stripped, spaces to dashes);
* ``http(s)``/``mailto`` links are reported but not fetched (CI must not
  depend on external availability).

Arguments may be markdown files or directories; a directory is checked
recursively (every ``*.md`` under it), so new docs pages are covered the
moment they land — no CI edit required.  A directory containing no
markdown (e.g. ``examples/``) still validates that links *into* it from
the checked pages resolve.

Exit code 1 when any link is broken — the CI docs job runs this over
``README.md``, ``docs/`` and ``examples/`` so the guides cannot rot
silently.

Usage::

    python -m tools.check_markdown_links README.md docs/ examples/
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, dashes for
    spaces (inline code/link markup stripped first)."""
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> set[str]:
    stripped = CODE_FENCE.sub("", markdown)
    return {github_slug(h) for h in HEADING.findall(stripped)}


def iter_links(markdown: str):
    stripped = CODE_FENCE.sub("", markdown)
    for match in INLINE_LINK.finditer(stripped):
        yield match.group(1)
    for match in REFERENCE_DEF.finditer(stripped):
        yield match.group(1)


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    markdown = path.read_text()
    own_slugs = heading_slugs(markdown)
    for target in iter_links(markdown):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in own_slugs:
                errors.append(f"{path}: broken anchor {target}")
            continue
        rel, _, fragment = target.partition("#")
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken path link {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_slugs(resolved.read_text()):
                errors.append(
                    f"{path}: broken anchor #{fragment} in {rel}"
                )
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(
            "usage: check_markdown_links.py FILE.md|DIR [FILE.md|DIR ...]",
            file=sys.stderr,
        )
        return 2
    errors: list[str] = []
    checked = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            errors.append(f"{path}: file does not exist")
            continue
        targets = sorted(path.rglob("*.md")) if path.is_dir() else [path]
        for target in targets:
            errors.extend(check_file(target))
            checked += 1
    for error in errors:
        print(f"BROKEN: {error}", file=sys.stderr)
    print(f"{checked} file(s) checked, {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
