"""``python -m tools.check_markdown_links`` entry point."""

import sys

from . import main

raise SystemExit(main(sys.argv[1:]))
