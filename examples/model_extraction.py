"""Future-work demo: reverse-engineering a PLM hidden behind an API.

The paper's conclusion promises "reverse engineer PLMs hidden behind APIs"
as future work; :mod:`repro.extraction` delivers it.  One certified OpenAPI
interpretation per probe recovers a region's *complete* relative softmax
parameters, so harvesting probes and routing by nearest anchor rebuilds a
functional clone of the hidden model.

This script charts fidelity versus probe budget: label agreement with the
hidden model rises toward 100% as more regions are harvested.

Run:  python examples/model_extraction.py
"""

import numpy as np

from repro.api import PredictionAPI
from repro.data import make_blobs, train_test_split
from repro.eval import render_table
from repro.extraction import PiecewiseSurrogate, RegionExplorer, fidelity_report
from repro.models import ReLUNetwork, TrainingConfig, train_network


def main() -> None:
    data = make_blobs(900, n_features=8, n_classes=4, separation=3.5, seed=21)
    train, test = train_test_split(data, test_fraction=0.3, seed=21)
    hidden = ReLUNetwork([8, 24, 12, 4], seed=21)
    train_network(
        hidden, train.X, train.y,
        TrainingConfig(epochs=80, learning_rate=3e-3, seed=21),
    )
    api = PredictionAPI(hidden)
    print(f"hidden PLNN trained (test acc "
          f"{hidden.accuracy(test.X, test.y):.3f}); extraction begins — "
          "from here on, only API queries.\n")

    explorer = RegionExplorer(api, seed=0)
    rows = []
    budgets = [10, 30, 60, 120, 250]
    probes = train.X  # the attacker's unlabeled probe pool
    used = 0
    for budget in budgets:
        explorer.explore(probes[used:budget])
        used = budget
        surrogate = PiecewiseSurrogate(explorer.records)
        report = fidelity_report(surrogate, api, test.X)
        rows.append([
            budget,
            explorer.n_regions,
            api.query_count,
            report.label_agreement,
            report.prob_mae,
        ])

    print(render_table(
        ["probes", "regions found", "API queries", "label agreement", "prob MAE"],
        rows,
    ))
    print(
        "\nnotes:\n"
        "  - inside a correctly-routed region the clone's probabilities are\n"
        "    *exact* (softmax only sees logit differences, which OpenAPI\n"
        "    recovers); residual error is purely nearest-anchor routing.\n"
        "  - this is why probability-revealing APIs leak much more than\n"
        "    label-only APIs for the PLM family."
    )

    # Bonus: the clone is itself a PLM — interpret it with OpenAPI.
    from repro.core import OpenAPIInterpreter

    surrogate = PiecewiseSurrogate(explorer.records)
    clone_api = PredictionAPI(surrogate)
    interp = OpenAPIInterpreter(seed=1).interpret(clone_api, test.X[0])
    print(f"\nclone is itself interpretable: OpenAPI certified in "
          f"{interp.iterations} iteration(s) on the clone's API.")


if __name__ == "__main__":
    main()
