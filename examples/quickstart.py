"""Quickstart: interpret a model you can only query, exactly.

This is the 60-second tour of the library:

1. train a piecewise linear model (a small ReLU network);
2. hide it behind a :class:`PredictionAPI` — from here on, *only* queries;
3. run OpenAPI to recover the exact decision features of a prediction;
4. verify against the white-box ground truth (something a real API user
   could not do — we can, because we own the model).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import PredictionAPI
from repro.core import OpenAPIInterpreter
from repro.data import make_blobs, train_test_split
from repro.metrics import l1_distance
from repro.models import ReLUNetwork, TrainingConfig, train_network
from repro.models.openbox import ground_truth_decision_features


def main() -> None:
    # 1. A dataset and a trained PLNN (everything numpy, no frameworks).
    data = make_blobs(600, n_features=10, n_classes=4, separation=4.0, seed=7)
    train, test = train_test_split(data, test_fraction=0.25, seed=7)
    model = ReLUNetwork([10, 32, 16, 4], seed=7)
    report = train_network(
        model, train.X, train.y,
        TrainingConfig(epochs=80, learning_rate=3e-3, seed=7),
    )
    print(f"trained PLNN: train acc {report.final_train_accuracy:.3f}, "
          f"test acc {model.accuracy(test.X, test.y):.3f}")

    # 2. The deployment boundary: a query-only API.
    api = PredictionAPI(model)

    # 3. Interpret one test prediction with OpenAPI (Algorithm 1).
    x0 = test.X[0]
    predicted = int(np.argmax(api.predict_proba(x0)))
    interpreter = OpenAPIInterpreter(seed=0)
    interpretation = interpreter.interpret(api, x0, c=predicted)

    print(f"\ninterpreting prediction: class {predicted} "
          f"(p = {api.predict_proba(x0)[predicted]:.4f})")
    print(f"certified: {interpretation.all_certified}  "
          f"iterations: {interpretation.iterations}  "
          f"final hypercube edge: {interpretation.final_edge:g}  "
          f"API queries: {interpretation.n_queries}")

    features = interpretation.decision_features
    order = np.argsort(-np.abs(features))
    print("\ntop-5 decision features (sign = supports/opposes the class):")
    for rank, i in enumerate(order[:5], 1):
        print(f"  {rank}. feature[{i}] weight {features[i]:+.4f}")

    # 4. Ground-truth check (impossible for a real API consumer; we cheat
    #    because we own the model — this is the paper's exactness claim).
    truth = ground_truth_decision_features(model, x0, predicted)
    print(f"\nL1 distance to white-box ground truth: "
          f"{l1_distance(truth, features):.2e}  (machine precision)")


if __name__ == "__main__":
    main()
