"""Finance scenario: auditing a loan-decision API, exactly.

The paper's introduction motivates interpretation with high-stakes domains
like financial business.  This example plays the full scenario:

1. a "bank" trains a PLNN on credit applications and deploys it behind an
   API (we only keep the API from here on);
2. an auditor interprets individual deny/approve decisions with OpenAPI,
   obtaining exact, named feature weights;
3. the auditor *verifies* each interpretation against fresh API probes —
   the falsifiable-claim property heuristic explainers lack;
4. the regime structure is visible: secured (high-collateral) and
   unsecured applications are scored by different locally linear rules,
   and the interpretations reflect exactly that.

Run:  python examples/credit_scoring.py
"""

import numpy as np

from repro.api import PredictionAPI
from repro.core import OpenAPIInterpreter, verify_interpretation
from repro.data import CREDIT_FEATURE_NAMES, make_credit_scoring, train_test_split
from repro.models import ReLUNetwork, TrainingConfig, train_network


def describe(interpretation, feature_names, top_k=4) -> None:
    values = interpretation.decision_features
    order = np.argsort(-np.abs(values))[:top_k]
    for i in order:
        direction = "supports" if values[i] > 0 else "opposes"
        print(f"    {feature_names[i]:<18} {values[i]:+7.3f}  ({direction})")


def main() -> None:
    data = make_credit_scoring(1500, seed=42)
    train, test = train_test_split(data, test_fraction=0.25, seed=42)
    model = ReLUNetwork([data.n_features, 32, 16, 3], seed=42)
    train_network(
        model, train.X, train.y,
        TrainingConfig(epochs=150, learning_rate=3e-3, seed=42),
    )
    api = PredictionAPI(model)
    print(f"loan model deployed (test accuracy "
          f"{model.accuracy(test.X, test.y):.3f}); auditor sees only the API\n")

    interpreter = OpenAPIInterpreter(seed=0)

    # Pick one denied and one approved application from the test stream.
    predictions = api.predict(test.X)
    denied_idx = int(np.flatnonzero(predictions == 0)[0])
    approved_idx = int(np.flatnonzero(predictions == 2)[0])

    for label, idx in (("DENIED", denied_idx), ("APPROVED", approved_idx)):
        x0 = test.X[idx]
        c = int(predictions[idx])
        interp = interpreter.interpret(api, x0, c=c)
        probs = api.predict_proba(x0)
        print(f"application #{idx}: {label} "
              f"(p = {probs[c]:.3f}, certified in {interp.iterations} "
              f"iteration(s), {interp.n_queries} queries)")
        print("  exact decision features (why this class, vs the others):")
        describe(interp, CREDIT_FEATURE_NAMES)

        report = verify_interpretation(api, interp, n_probes=25, seed=1)
        print(f"  independent verification: {report}\n")

    # Regime structure: secured vs unsecured applications are governed by
    # different locally linear rules, so 'collateral' carries real weight
    # only in the secured regime.
    collateral_col = CREDIT_FEATURE_NAMES.index("collateral")
    secured = test.X[test.X[:, collateral_col] >= 0.6][:8]
    unsecured = test.X[test.X[:, collateral_col] <= 0.3][:8]

    def mean_abs_collateral_weight(instances) -> float:
        weights = []
        for x0 in instances:
            interp = interpreter.interpret(api, x0, c=2)  # 'approve'
            weights.append(abs(interp.decision_features[collateral_col]))
        return float(np.mean(weights))

    w_secured = mean_abs_collateral_weight(secured)
    w_unsecured = mean_abs_collateral_weight(unsecured)
    print("regime check — mean |weight of 'collateral'| toward approval:")
    print(f"  secured applications   (collateral >= 0.6): {w_secured:.3f}")
    print(f"  unsecured applications (collateral <= 0.3): {w_unsecured:.3f}")
    print("\nthe model prices collateral differently across regimes — visible"
          "\nonly because interpretations are exact and region-faithful;"
          "\naveraged/heuristic explanations smear the two regimes together.")


if __name__ == "__main__":
    main()
