"""Figure 2 scenario: what does an image classifier behind an API look at?

Reproduces the paper's Figure 2 workflow on the FMNIST stand-in: train a
PLNN and an LMT on garment silhouettes, hide both behind APIs, and render
the averaged OpenAPI decision features of five classes as heatmaps next to
the averaged class images.  The heatmaps should highlight the semantic
parts (boot heel, pullover sleeves, coat collar, sneaker sole, t-shirt
short sleeves) — interpretation a human can eyeball.

Run:  python examples/fashion_heatmaps.py
"""

from repro.eval import ExperimentConfig, build_setups, render_heatmap
from repro.eval.figures import build_fig2_heatmaps

# The five classes the paper shows, in its order:
# boot, pullover, coat, sneaker, t-shirt.
PAPER_CLASSES = (9, 2, 4, 7, 0)


def main() -> None:
    config = ExperimentConfig.bench_scale().scaled(
        datasets=("synthetic-fashion",),
        models=("plnn", "lmt"),
        image_size=12,          # big enough to see shapes in ASCII
        n_train=700,
        n_test=300,
    )
    print("training PLNN and LMT on synthetic-fashion "
          f"({config.image_size}x{config.image_size}, d={config.n_features})...")
    setups = build_setups(config)

    for setup in setups:
        print(f"\n=== {setup.label}  "
              f"(train acc {setup.train_accuracy:.3f}, "
              f"test acc {setup.test_accuracy:.3f}) ===")
        entries = build_fig2_heatmaps(
            setup, classes=PAPER_CLASSES, n_per_class=5, seed=0
        )
        for entry in entries:
            print(f"\n--- class '{entry.class_name}' "
                  f"(avg over {entry.n_instances} interpretations) ---")
            print("average image:")
            print(render_heatmap(entry.average_image))
            print("average OpenAPI decision features "
                  "(shade = supports class, '-' = opposes):")
            print(render_heatmap(entry.average_heatmap))


if __name__ == "__main__":
    main()
