"""The paper's central comparison: exact OpenAPI vs heuristic baselines.

Reproduces the Figures 5-7 story on one digit-classification PLNN:

* heuristic methods (LIME linear/ridge, the naive determined system, ZOO)
  each need a *perturbation distance* ``h`` chosen blind;
* with ``h`` too large their samples cross locally linear regions
  (Region Difference > 0) and the recovered weights are garbage;
* with ``h`` too small they hit float64 saturation;
* OpenAPI needs no ``h`` — it adapts until its consistency certificate
  passes, and its answer matches the white-box ground truth to rounding
  error.

Run:  python examples/exactness_vs_heuristics.py
"""

from repro.eval import ExperimentConfig, build_setups, render_table
from repro.eval.figures import build_fig567_quality


def main() -> None:
    config = ExperimentConfig.bench_scale().scaled(
        datasets=("synthetic-digits",),
        models=("plnn",),
        n_interpret=10,
        h_grid=(1e-8, 1e-4, 1e-2),
    )
    print("training a PLNN on synthetic-digits "
          f"(d={config.n_features})...")
    setup = build_setups(config)[0]
    print(f"{setup.label}: train acc {setup.train_accuracy:.3f}, "
          f"test acc {setup.test_accuracy:.3f}")
    print(f"\ninterpreting {config.n_interpret} test instances with "
          "OpenAPI and L/R/N/Z at h in {1e-8, 1e-4, 1e-2}...\n")

    result = build_fig567_quality(setup, config, seed=0)

    rows = []
    for name, cell in result.cells.items():
        rows.append([
            name,
            cell.avg_rd,
            cell.wd_mean,
            cell.l1_mean,
            cell.l1_max,
            cell.n_failures,
        ])
    print(render_table(
        ["method", "avg RD", "WD mean", "L1Dist mean", "L1Dist max", "failures"],
        rows,
    ))
    print(
        "\nreading guide (the paper's Figures 5-7):\n"
        "  - OpenAPI: RD = WD = 0 and L1Dist at rounding error — exact.\n"
        "  - h = 1e-2: RD jumps (samples cross regions) and L1Dist explodes\n"
        "    for the naive method especially (Theorem 1).\n"
        "  - h = 1e-8: RD is 0 but L1Dist *worsens* again — float64\n"
        "    saturation; precision, not geometry, is the binding constraint.\n"
        "  - R(*): ridge LIME is biased at every h (shrinkage pathology)."
    )


if __name__ == "__main__":
    main()
