"""Figure 4 scenario: do similar inputs get similar explanations?

Inconsistent explanations erode trust: two nearly identical loan
applications explained by contradictory feature weights look like a broken
(or unfair) system even when the model is fine.  The paper's consistency
experiment quantifies this via the cosine similarity between each
instance's interpretation and its nearest neighbour's.

OpenAPI is consistent *by construction*: every instance in a locally
linear region maps to the same decision features.  Gradient methods are
consistent only when the neighbour lands in the same region; standard LIME
re-fits a noisy local model every time.

Run:  python examples/consistency_study.py
"""

import numpy as np

from repro.eval import ExperimentConfig, build_setups, render_table
from repro.eval.figures import build_fig4_consistency


def main() -> None:
    config = ExperimentConfig.bench_scale().scaled(
        datasets=("synthetic-fashion",),
        models=("plnn", "lmt"),
        n_interpret=20,
    )
    print("training PLNN and LMT on synthetic-fashion...")
    setups = build_setups(config)

    for setup in setups:
        result = build_fig4_consistency(setup, config, seed=0)
        rows = []
        for name, scores in result.scores.items():
            rows.append([
                name,
                float(scores.mean()),
                float(np.median(scores)),
                float(scores.min()),
                float((scores > 0.999).mean()),
            ])
        print(f"\n=== {setup.label} — nearest-neighbour cosine similarity ===")
        print(render_table(
            ["method", "mean CS", "median CS", "min CS", "frac CS≈1"],
            rows,
        ))

    print(
        "\nreading guide (paper's Figure 4): OpenAPI ('OA') dominates —\n"
        "its CS is exactly 1 whenever instance and neighbour share a\n"
        "locally linear region, and the fraction of such pairs is high.\n"
        "Gradient methods ('S', 'G') give per-instance answers; standard\n"
        "LIME ('L') is the least stable. Integrated Gradients ('I') is\n"
        "smoother than the other gradient methods, as the paper observes."
    )


if __name__ == "__main__":
    main()
