"""Tests for ``tools/repro_lint`` — the AST invariant checker.

Three layers:

* fixture snippets per rule (violating / clean / suppressed variants),
  run through the real engine with a fixture-scoped config;
* a regression fixture that re-introduces the PR 4 unsynchronized meter
  mutation and proves the race checker flags it;
* a meta-test that the shipped ``src/`` tree lints clean with the
  shipped config — the same gate CI's lint job enforces.
"""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint import RULES, SourceFile, lint_file, lint_paths  # noqa: E402
from tools.repro_lint.cli import main as lint_main  # noqa: E402
from tools.repro_lint.config import DEFAULT_CONFIG, validate_config  # noqa: E402
from tools.repro_lint.engine import resolve_rules  # noqa: E402

ALL_RULES = sorted(RULES)

#: Fixture config: the fixture's fake paths are the scoped modules.
FIXTURE_CONFIG = {
    "seam_modules": ["fixtures/seam_mod.py"],
    "seam_whitelist": {
        "fixtures/seam_mod.py": {
            "host_helper": "fixture host-side helper justification",
        },
    },
    "wallclock_modules": ["fixtures/wire_mod.py"],
    "store_modules": ["fixtures/store_mod.py"],
    "store_write_whitelist": {
        "fixtures/store_mod.py": {
            "sanctioned_writer": "fixture tmp+replace helper justification",
        },
    },
}


def lint_snippet(code: str, path: str = "fixtures/plain_mod.py"):
    sf = SourceFile(Path(path), path, textwrap.dedent(code))
    findings, suppressed = lint_file(sf, ALL_RULES, FIXTURE_CONFIG)
    return findings, suppressed


def rules_of(findings):
    return [f.rule for f in findings]


# ===================================================================== #
# lock-discipline
# ===================================================================== #
class TestLockDiscipline:
    def test_unlocked_mutation_flagged(self):
        findings, _ = lint_snippet(
            """
            class Meter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # guarded-by: _lock

                def bump(self):
                    self._count += 1
            """
        )
        assert rules_of(findings) == ["lock-discipline"]
        assert "mutated" in findings[0].message
        assert "_count" in findings[0].message

    def test_unlocked_read_flagged(self):
        findings, _ = lint_snippet(
            """
            class Meter:
                def __init__(self):
                    self._count = 0  # guarded-by: _lock

                def peek(self):
                    return self._count
            """
        )
        assert rules_of(findings) == ["lock-discipline"]
        assert "read" in findings[0].message

    def test_locked_access_clean(self):
        findings, _ = lint_snippet(
            """
            class Meter:
                def __init__(self):
                    self._count = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self._count += 1
                    with self._lock:
                        return self._count
            """
        )
        assert findings == []

    def test_subscripted_lock_expression_counts(self):
        findings, _ = lint_snippet(
            """
            class Sharded:
                def __init__(self):
                    self._hits = 0  # guarded-by: _locks

                def bump(self, si):
                    with self._locks[si]:
                        self._hits += 1
            """
        )
        assert findings == []

    def test_requires_lock_annotation_trusted(self):
        findings, _ = lint_snippet(
            """
            class Meter:
                def __init__(self):
                    self._count = 0  # guarded-by: _lock

                def _bump_locked(self):  # requires-lock: _lock
                    self._count += 1
            """
        )
        assert findings == []

    def test_declaring_function_exempt(self):
        # __init__ builds the object before it is shared.
        findings, _ = lint_snippet(
            """
            class Meter:
                def __init__(self, n):
                    self._count = 0  # guarded-by: _lock
                    self._count = n  # construction, same function
            """
        )
        assert findings == []

    def test_nested_function_under_with_not_credited(self):
        # A closure created under the lock runs later, lock not held.
        findings, _ = lint_snippet(
            """
            class Meter:
                def __init__(self):
                    self._count = 0  # guarded-by: _lock

                def make_reader(self):
                    with self._lock:
                        def reader():
                            return self._count
                    return reader
            """
        )
        assert rules_of(findings) == ["lock-discipline"]

    def test_module_global_discipline(self):
        findings, _ = lint_snippet(
            """
            _cache = {}  # guarded-by: _mu

            def good(k):
                with _mu:
                    return _cache.get(k)

            def bad(k):
                return _cache.get(k)
            """
        )
        assert rules_of(findings) == ["lock-discipline"]
        assert "`bad`" in findings[0].message

    def test_pr4_meter_race_reproduction(self):
        """The PR 4 bug, as an AST fixture: PredictionAPI._score_blocks
        check-then-committed the query meter with no lock — concurrent
        broker-off callers lost `+= n_rows` updates and double-passed
        the budget check.  The race checker must flag both the
        unsynchronized check (read) and the commit (mutation)."""
        findings, _ = lint_snippet(
            """
            class PredictionAPI:
                def __init__(self, model, budget):
                    self._model = model
                    self._budget = budget
                    self._meter_lock = threading.Lock()
                    self._query_count = 0  # guarded-by: _meter_lock

                def _score_blocks(self, blocks):
                    n_rows = sum(b.shape[0] for b in blocks)
                    if self._query_count + n_rows > self._budget:
                        raise APIBudgetExceededError()
                    results = [self._model.predict_proba(b) for b in blocks]
                    self._query_count += n_rows
                    return results
            """
        )
        assert rules_of(findings) == ["lock-discipline", "lock-discipline"]
        lines = sorted(f.line for f in findings)
        messages = " ".join(f.message for f in findings)
        assert "read" in messages and "mutated" in messages
        assert lines[0] < lines[1]  # the check, then the commit

    def test_fixed_pr4_shape_is_clean(self):
        findings, _ = lint_snippet(
            """
            class PredictionAPI:
                def __init__(self, model, budget):
                    self._meter_lock = threading.Lock()
                    self._query_count = 0  # guarded-by: _meter_lock

                def _score_blocks(self, blocks):
                    n_rows = sum(b.shape[0] for b in blocks)
                    with self._meter_lock:
                        if self._query_count + n_rows > self._budget:
                            raise APIBudgetExceededError()
                    results = [self._model.predict_proba(b) for b in blocks]
                    with self._meter_lock:
                        self._query_count += n_rows
                    return results
            """
        )
        assert findings == []

    def test_suppression_with_justification(self):
        findings, suppressed = lint_snippet(
            """
            class Meter:
                def __init__(self):
                    self._count = 0  # guarded-by: _lock

                def racy_peek(self):
                    # repro-lint: disable=lock-discipline atomic int read; drift is acceptable for monitoring
                    return self._count
            """
        )
        assert findings == []
        assert suppressed == 1


# ===================================================================== #
# backend-seam
# ===================================================================== #
SEAM = "fixtures/seam_mod.py"


class TestBackendSeam:
    @pytest.mark.parametrize(
        "stmt",
        [
            "out = np.linalg.solve(grams, rhs)",
            "out = np.linalg.norm(res, axis=2)",
            "out = np.einsum('kd,kdp->kp', a, b)",
            "out = np.argpartition(d2, k)",
            "out = stacks.argpartition(k)",
            "out = a @ b",
        ],
    )
    def test_raw_math_flagged_in_seam_module(self, stmt):
        findings, _ = lint_snippet(
            f"""
            def scan(a, b, grams, rhs, res, d2, stacks, k):
                {stmt}
                return out
            """,
            path=SEAM,
        )
        assert rules_of(findings) == ["backend-seam"]

    def test_same_code_outside_seam_modules_clean(self):
        findings, _ = lint_snippet(
            """
            def scan(grams, rhs):
                return np.linalg.solve(grams, rhs)
            """,
            path="fixtures/not_covered.py",
        )
        assert findings == []

    def test_backend_kernels_clean(self):
        findings, _ = lint_snippet(
            """
            def scan(be, grams, rhs):
                return be.solve(grams, rhs)
            """,
            path=SEAM,
        )
        assert findings == []

    def test_whitelisted_host_helper_clean(self):
        findings, _ = lint_snippet(
            """
            def host_helper(a, b):
                return a @ b
            """,
            path=SEAM,
        )
        assert findings == []

    def test_linalg_error_type_not_flagged(self):
        findings, _ = lint_snippet(
            """
            def solve(a, b):
                try:
                    return host_solve(a, b)
                except np.linalg.LinAlgError:
                    return None
            """,
            path=SEAM,
        )
        assert findings == []

    def test_suppressed_with_justification(self):
        findings, suppressed = lint_snippet(
            """
            def scan(a, b):
                # repro-lint: disable=backend-seam tiny host-side dot, never on the device path
                return a @ b
            """,
            path=SEAM,
        )
        assert findings == []
        assert suppressed == 1

    def test_suppression_without_justification_is_a_finding(self):
        findings, suppressed = lint_snippet(
            """
            def scan(a, b):
                # repro-lint: disable=backend-seam
                return a @ b
            """,
            path=SEAM,
        )
        assert suppressed == 0
        assert sorted(rules_of(findings)) == ["backend-seam", "suppression"]


# ===================================================================== #
# determinism
# ===================================================================== #
WIRE = "fixtures/wire_mod.py"


class TestDeterminism:
    def test_unseeded_default_rng_flagged(self):
        findings, _ = lint_snippet(
            """
            def sample():
                return np.random.default_rng().normal(size=3)
            """
        )
        assert rules_of(findings) == ["determinism"]

    def test_none_seed_flagged(self):
        findings, _ = lint_snippet("rng = np.random.default_rng(None)\n")
        assert rules_of(findings) == ["determinism"]

    def test_seeded_rng_clean(self):
        findings, _ = lint_snippet(
            "rng = np.random.default_rng(1234)\n"
            "rng2 = np.random.default_rng(seed)\n"
        )
        assert findings == []

    def test_stdlib_random_flagged(self):
        findings, _ = lint_snippet(
            """
            import random

            def jitter():
                return random.random()
            """
        )
        assert rules_of(findings) == ["determinism"]

    def test_legacy_np_global_rng_flagged(self):
        findings, _ = lint_snippet(
            """
            def reset():
                np.random.seed(0)
            """
        )
        assert rules_of(findings) == ["determinism"]

    def test_wallclock_into_seed_flagged_everywhere(self):
        findings, _ = lint_snippet(
            """
            def worker_rng():
                seed = time.time_ns()
                return np.random.default_rng(seed)
            """,
            path="fixtures/not_covered.py",
        )
        assert rules_of(findings) == ["determinism"]
        assert "seed" in findings[0].message

    def test_wallclock_as_seed_kwarg_flagged(self):
        findings, _ = lint_snippet(
            "api = Transport(seed=time.time())\n",
            path="fixtures/not_covered.py",
        )
        assert rules_of(findings) == ["determinism"]

    def test_wallclock_in_wire_module_flagged(self):
        findings, _ = lint_snippet(
            """
            def handle(request):
                started = time.perf_counter()
                return started
            """,
            path=WIRE,
        )
        assert rules_of(findings) == ["determinism"]

    def test_timing_ok_annotation_whitelists_meters(self):
        findings, _ = lint_snippet(
            """
            def handle(request):
                started = time.perf_counter()  # timing-ok: latency meter, never enters the payload
                return compute(request)
            """,
            path=WIRE,
        )
        assert findings == []

    def test_timing_ok_needs_real_justification(self):
        findings, _ = lint_snippet(
            """
            def handle(request):
                started = time.perf_counter()  # timing-ok: yes
                return compute(request)
            """,
            path=WIRE,
        )
        assert rules_of(findings) == ["suppression"]

    def test_plain_timing_outside_scope_clean(self):
        findings, _ = lint_snippet(
            "t0 = time.perf_counter()\n",
            path="fixtures/not_covered.py",
        )
        assert findings == []


# ===================================================================== #
# durability
# ===================================================================== #
STORE = "fixtures/store_mod.py"


class TestDurability:
    def test_replace_without_fsync_flagged(self):
        findings, _ = lint_snippet(
            """
            def publish(tmp, dst):
                with open(tmp, "rb") as h:
                    pass
                os.replace(tmp, dst)
            """,
            path=STORE,
        )
        assert rules_of(findings) == ["durability"]
        assert "fsync" in findings[0].message

    def test_fsync_then_replace_clean(self):
        findings, _ = lint_snippet(
            """
            def sanctioned_writer(tmp, dst, payload):
                with open(tmp, "w") as h:
                    h.write(payload)
                    h.flush()
                    os.fsync(h.fileno())
                os.replace(tmp, dst)
            """,
            path=STORE,
        )
        assert findings == []

    def test_replace_outside_store_modules_clean(self):
        findings, _ = lint_snippet(
            "def publish(a, b):\n    os.replace(a, b)\n",
            path="fixtures/not_covered.py",
        )
        assert findings == []

    def test_bare_write_open_flagged(self):
        findings, _ = lint_snippet(
            """
            def sneak(path):
                with open(path, "w") as h:
                    h.write("x")
            """,
            path=STORE,
        )
        assert rules_of(findings) == ["durability"]

    def test_append_and_plus_modes_count_as_writes(self):
        findings, _ = lint_snippet(
            """
            def sneak_a(path):
                open(path, "ab")

            def sneak_plus(path):
                open(path, "r+b")
            """,
            path=STORE,
        )
        assert rules_of(findings) == ["durability", "durability"]

    def test_read_open_clean(self):
        findings, _ = lint_snippet(
            "def load(path):\n    return open(path, 'rb').read()\n",
            path=STORE,
        )
        assert findings == []

    def test_dynamic_mode_flagged(self):
        findings, _ = lint_snippet(
            "def sneak(path, mode):\n    return open(path, mode)\n",
            path=STORE,
        )
        assert rules_of(findings) == ["durability"]

    def test_whitelisted_writer_clean(self):
        findings, _ = lint_snippet(
            """
            def sanctioned_writer(path):
                with open(path, "wb") as h:
                    h.write(b"x")
            """,
            path=STORE,
        )
        assert findings == []

    def test_suppressed_with_justification(self):
        findings, suppressed = lint_snippet(
            """
            def stderr_log(path):
                # repro-lint: disable=durability diagnostics log, not store data
                return open(path, "wb")
            """,
            path=STORE,
        )
        assert findings == []
        assert suppressed == 1


# ===================================================================== #
# exception-boundary
# ===================================================================== #
class TestExceptionBoundary:
    def test_bare_except_flagged(self):
        findings, _ = lint_snippet(
            """
            def run(job):
                try:
                    job()
                except:
                    pass
            """
        )
        assert rules_of(findings) == ["exception-boundary"]
        assert "bare" in findings[0].message

    def test_broad_catch_without_comment_flagged(self):
        findings, _ = lint_snippet(
            """
            def run(job):
                try:
                    job()
                except Exception:
                    pass
            """
        )
        assert rules_of(findings) == ["exception-boundary"]

    def test_broad_catch_in_tuple_flagged(self):
        findings, _ = lint_snippet(
            """
            def run(job):
                try:
                    job()
                except (ValueError, Exception):
                    pass
            """
        )
        assert rules_of(findings) == ["exception-boundary"]

    def test_justified_boundary_clean(self):
        findings, _ = lint_snippet(
            """
            def loop(jobs):
                for job in jobs:
                    try:
                        job()
                    except Exception:  # boundary: one job must not kill the loop
                        continue
            """
        )
        assert findings == []

    def test_cleanup_and_reraise_clean(self):
        findings, _ = lint_snippet(
            """
            def run(job, lock):
                try:
                    job()
                except BaseException:
                    lock.release()
                    raise
            """
        )
        assert findings == []

    def test_reraise_of_bound_name_clean(self):
        findings, _ = lint_snippet(
            """
            def run(job):
                try:
                    job()
                except Exception as exc:
                    log(exc)
                    raise exc
            """
        )
        assert findings == []

    def test_short_justification_is_a_finding(self):
        findings, _ = lint_snippet(
            """
            def run(job):
                try:
                    job()
                except Exception:  # boundary: ok
                    pass
            """
        )
        assert rules_of(findings) == ["suppression"]

    def test_narrow_catches_clean(self):
        findings, _ = lint_snippet(
            """
            def run(job):
                try:
                    job()
                except (OSError, ValueError):
                    pass
            """
        )
        assert findings == []


# ===================================================================== #
# suppression meta-rule + engine behavior
# ===================================================================== #
class TestSuppressionMeta:
    def test_unknown_rule_flagged(self):
        findings, _ = lint_snippet(
            "# repro-lint: disable=no-such-rule because reasons apply\nx = 1\n"
        )
        assert rules_of(findings) == ["suppression"]
        assert "unknown rule" in findings[0].message

    def test_malformed_comment_flagged(self):
        findings, _ = lint_snippet("# repro-lint: disable everything\nx = 1\n")
        assert rules_of(findings) == ["suppression"]

    def test_suppression_rule_cannot_be_suppressed(self):
        findings, _ = lint_snippet(
            "# repro-lint: disable=suppression because I said so\nx = 1\n"
        )
        assert rules_of(findings) == ["suppression"]
        assert "cannot be suppressed" in findings[0].message

    def test_multi_rule_suppression(self):
        findings, suppressed = lint_snippet(
            """
            def scan(a, b):
                # repro-lint: disable=backend-seam,determinism host-side audit path with its own seed audit
                return (a @ b) + np.random.default_rng().normal()
            """,
            path=SEAM,
        )
        assert findings == []
        assert suppressed == 2

    def test_resolve_rules_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown rule"):
            resolve_rules(enable=["no-such-rule"])

    def test_suppression_rule_always_active(self):
        assert "suppression" in resolve_rules(disable=["suppression"])

    def test_config_validation_rejects_empty_justification(self):
        bad = dict(DEFAULT_CONFIG)
        bad["seam_whitelist"] = {"m.py": {"fn": "   "}}
        with pytest.raises(ValueError, match="empty justification"):
            validate_config(bad)


# ===================================================================== #
# CLI
# ===================================================================== #
class TestCli:
    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert lint_main([str(target)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_and_json_schema(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(
            "def run(job):\n"
            "    try:\n"
            "        job()\n"
            "    except:\n"
            "        pass\n"
        )
        report_path = tmp_path / "report.json"
        code = lint_main([
            str(target), "--format", "json", "--output", str(report_path),
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-lint"
        assert payload["n_findings"] == 1
        assert payload["files_checked"] == 1
        finding = payload["findings"][0]
        assert set(finding) == {"path", "line", "col", "rule", "message"}
        assert finding["rule"] == "exception-boundary"
        # --output wrote the same report for the CI artifact.
        assert json.loads(report_path.read_text()) == payload

    def test_disable_rule(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(
            "def run(job):\n"
            "    try:\n"
            "        job()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert lint_main([str(target)]) == 1
        assert lint_main([str(target), "--disable", "exception-boundary"]) == 0

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert lint_main([str(target), "--disable", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert lint_main(["/no/such/dir/file.py"]) == 2


# ===================================================================== #
# the repository itself
# ===================================================================== #
class TestRepositoryLintsClean:
    def test_src_tree_lints_clean(self):
        """The CI lint gate, as a test: the shipped tree has zero
        findings under the shipped config."""
        report = lint_paths([REPO_ROOT / "src"])
        assert report.findings == [], "\n" + "\n".join(
            f.as_text() for f in report.findings
        )
        assert report.files_checked > 50
        # The sweep's deliberate, justified escapes are visible.
        assert report.suppressed >= 5

    def test_annotated_modules_participate(self):
        """Every module ISSUE 9 names carries at least one guarded-by
        annotation, so the race checker is actually armed there."""
        for rel in [
            "src/repro/api/service.py",
            "src/repro/api/transport.py",
            "src/repro/serving/service.py",
            "src/repro/serving/shard.py",
            "src/repro/serving/gateway.py",
            "src/repro/serving/store.py",
            "src/repro/core/backend.py",
        ]:
            text = (REPO_ROOT / rel).read_text()
            assert "guarded-by:" in text, f"{rel} lost its annotations"
