"""Tests for OpenAPI (Algorithm 1) and the naive method — the paper's core.

The central claims under test:

* **Exactness (Theorem 2)**: a certified OpenAPI interpretation equals the
  OpenBox ground truth to numerical precision, on every PLM family (linear,
  ReLU net, MaxOut net, LMT).
* **Consistency**: instances sharing a locally linear region receive
  identical decision features.
* **Theorem 1**: the naive method silently returns wrong answers when its
  fixed perturbation distance crosses regions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import NoisyResponse, PredictionAPI
from repro.core import NaiveInterpreter, OpenAPIInterpreter
from repro.data import make_blobs
from repro.exceptions import CertificateError, ValidationError
from repro.models import ReLUNetwork, SoftmaxRegression, TrainingConfig, train_network
from repro.models.openbox import (
    ground_truth_core_parameters,
    ground_truth_decision_features,
)


class TestOpenAPIOnLinearModel:
    def test_exact_on_first_iteration(self, linear_api, linear_model, blobs3):
        interp = OpenAPIInterpreter(seed=0).interpret(linear_api, blobs3.X[0])
        assert interp.all_certified
        assert interp.iterations == 1
        gt = ground_truth_decision_features(
            linear_model, blobs3.X[0], interp.target_class
        )
        np.testing.assert_allclose(interp.decision_features, gt, atol=1e-9)

    def test_core_parameters_exact(self, linear_api, linear_model, blobs3):
        x0 = blobs3.X[1]
        interp = OpenAPIInterpreter(seed=1).interpret(linear_api, x0, c=0)
        for (c, cp), est in interp.pair_estimates.items():
            D, B = ground_truth_core_parameters(linear_model, x0, c, cp)
            np.testing.assert_allclose(est.weights, D, atol=1e-9)
            assert est.intercept == pytest.approx(B, abs=1e-8)

    def test_query_accounting(self, linear_model, blobs3):
        api = PredictionAPI(linear_model)
        interp = OpenAPIInterpreter(seed=2).interpret(api, blobs3.X[0])
        d = blobs3.n_features
        # 1 query for x0 + (d+1) per iteration.
        assert interp.n_queries == 1 + interp.iterations * (d + 1)
        assert api.query_count == interp.n_queries

    def test_explicit_class(self, linear_api, blobs3):
        interp = OpenAPIInterpreter(seed=3).interpret(linear_api, blobs3.X[0], c=2)
        assert interp.target_class == 2
        assert set(interp.pair_estimates) == {(2, 0), (2, 1)}


class TestOpenAPIOnPLNN:
    def test_exact_decision_features(self, relu_api, relu_model, blobs3):
        for i in (0, 5, 11):
            x0 = blobs3.X[i]
            interp = OpenAPIInterpreter(seed=i).interpret(relu_api, x0)
            gt = ground_truth_decision_features(
                relu_model, x0, interp.target_class
            )
            assert interp.all_certified
            np.testing.assert_allclose(interp.decision_features, gt, atol=1e-8)

    def test_adaptive_shrinking_happens(self, relu_api, blobs3):
        """On a multi-region PLNN, r=1.0 cubes usually cross regions."""
        interpreter = OpenAPIInterpreter(seed=4)
        iterations = [
            interpreter.interpret(relu_api, blobs3.X[i]).iterations
            for i in range(8)
        ]
        assert max(iterations) > 1

    def test_final_edge_matches_iterations(self, relu_api, blobs3):
        interp = OpenAPIInterpreter(seed=5, initial_edge=1.0, shrink=0.5).interpret(
            relu_api, blobs3.X[3]
        )
        assert interp.final_edge == pytest.approx(0.5 ** (interp.iterations - 1))

    def test_run_history_recorded(self, relu_api, blobs3):
        interpreter = OpenAPIInterpreter(seed=6)
        interp = interpreter.interpret(relu_api, blobs3.X[2])
        history = interpreter.last_run_history_
        assert len(history) == interp.iterations
        assert history[-1].n_certified == history[-1].n_pairs
        # Failed iterations (if any) carry large residuals.
        for record in history[:-1]:
            assert record.n_certified < record.n_pairs

    def test_consistency_within_region(self, relu_api, relu_model, blobs3):
        """Two instances of one region get identical decision features."""
        x0 = blobs3.X[0]
        region = relu_model.region_id(x0)
        rng = np.random.default_rng(0)
        x1 = None
        for _ in range(100):
            candidate = x0 + rng.uniform(-1e-3, 1e-3, size=x0.shape)
            if relu_model.region_id(candidate) == region:
                x1 = candidate
                break
        assert x1 is not None
        interpreter = OpenAPIInterpreter(seed=7)
        f0 = interpreter.interpret(relu_api, x0, c=0).decision_features
        f1 = interpreter.interpret(relu_api, x1, c=0).decision_features
        np.testing.assert_allclose(f0, f1, atol=1e-8)


class TestOpenAPIOnLMT(object):
    def test_exact_on_lmt(self, lmt_api, lmt_model, xor_dataset):
        for i in (0, 10, 20):
            x0 = xor_dataset.X[i]
            interp = OpenAPIInterpreter(seed=i).interpret(lmt_api, x0)
            gt = ground_truth_decision_features(
                lmt_model, x0, interp.target_class
            )
            np.testing.assert_allclose(interp.decision_features, gt, atol=1e-8)


class TestOpenAPIOnMaxOut:
    def test_exact_on_maxout(self, maxout_api, maxout_model, blobs3):
        x0 = blobs3.X[7]
        interp = OpenAPIInterpreter(seed=8).interpret(maxout_api, x0)
        gt = ground_truth_decision_features(maxout_model, x0, interp.target_class)
        np.testing.assert_allclose(interp.decision_features, gt, atol=1e-8)


class TestOpenAPIFailureModes:
    def test_noisy_api_raises_certificate_error(self, relu_model, blobs3):
        """A noisy API is not a PLM; the certificate must refuse, not lie."""
        api = PredictionAPI(relu_model, transform=NoisyResponse(0.01, seed=0))
        interpreter = OpenAPIInterpreter(seed=9, max_iterations=5)
        with pytest.raises(CertificateError) as exc_info:
            interpreter.interpret(api, blobs3.X[0])
        assert exc_info.value.iterations == 5

    def test_wrong_shape_rejected(self, linear_api):
        with pytest.raises(ValidationError):
            OpenAPIInterpreter().interpret(linear_api, np.ones(99))

    def test_bad_class_rejected(self, linear_api, blobs3):
        with pytest.raises(ValidationError):
            OpenAPIInterpreter().interpret(linear_api, blobs3.X[0], c=17)

    def test_invalid_hyperparams(self):
        with pytest.raises(ValidationError):
            OpenAPIInterpreter(max_iterations=0)
        with pytest.raises(ValidationError):
            OpenAPIInterpreter(shrink=1.0)
        with pytest.raises(ValidationError):
            OpenAPIInterpreter(shrink=0.0)
        with pytest.raises(ValidationError):
            OpenAPIInterpreter(initial_edge=0.0)


class TestInterpretAllClasses:
    def test_all_classes_from_one_sample_set(self, relu_api, relu_model, blobs3):
        x0 = blobs3.X[6]
        interpreter = OpenAPIInterpreter(seed=10)
        interpretations = interpreter.interpret_all_classes(relu_api, x0)
        assert len(interpretations) == 3
        for interp in interpretations:
            gt = ground_truth_decision_features(
                relu_model, x0, interp.target_class
            )
            np.testing.assert_allclose(interp.decision_features, gt, atol=1e-8)

    def test_queries_charged_once(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        interpretations = OpenAPIInterpreter(seed=11).interpret_all_classes(
            api, blobs3.X[0]
        )
        assert interpretations[0].n_queries == api.query_count
        assert all(i.n_queries == 0 for i in interpretations[1:])

    def test_pair_residuals_match_direct_interpret(self, relu_model, blobs3):
        """Regression: derived per-pair residuals must equal what a direct
        ``interpret(api, x0, c=c)`` over the same sample set reports.

        The pre-fix code labelled the derived pair ``(c, c')`` with the
        residual of the base pair ``(0, c')``, mislabelling every pair of
        the non-base classes (and pairs involving class 0 got a residual
        belonging to a different solve).  Now each derived pair is an
        actual least-squares solve of the shared certified sample set, so
        a fresh interpreter with the same seed — which draws the identical
        samples — must report the identical residuals.
        """
        x0 = blobs3.X[4]
        api = PredictionAPI(relu_model)
        interpretations = OpenAPIInterpreter(seed=21).interpret_all_classes(
            api, x0
        )
        for interp in interpretations:
            c = interp.target_class
            direct = OpenAPIInterpreter(seed=21).interpret(api, x0, c=c)
            if direct.iterations != interp.iterations:
                continue  # different sample set; residuals not comparable
            assert set(interp.pair_estimates) == set(direct.pair_estimates)
            for pair, est in interp.pair_estimates.items():
                ref = direct.pair_estimates[pair]
                assert est.residual == pytest.approx(ref.residual, rel=1e-9, abs=0)
                np.testing.assert_allclose(est.weights, ref.weights, rtol=1e-12)
                assert est.intercept == pytest.approx(ref.intercept, rel=1e-9)

    def test_derived_certificate_failure_falls_back_to_direct(
        self, relu_model, blobs3
    ):
        """Under an imperfect API a derived class's re-solve can fail the
        certificate even though class 0 passed (the base certificate never
        checked pairs without class 0).  Regression: this must fall back
        to a direct solve — with its extra queries metered — instead of
        raising an undocumented ValidationError."""
        from repro.api import RoundedResponse

        api = PredictionAPI(relu_model, transform=RoundedResponse(5))
        interpreter = OpenAPIInterpreter(seed=0, rtol=1e-4, max_iterations=30)
        # Instance 13 deterministically certifies class 0 while the local
        # re-solve of class 1 fails its certificate (found by sweep).
        interpretations = interpreter.interpret_all_classes(api, blobs3.X[13])
        assert len(interpretations) == 3
        assert [i.target_class for i in interpretations] == [0, 1, 2]
        assert all(i.all_certified for i in interpretations)
        # At least one derived class took the fallback path and metered
        # its own queries; classes served from the shared set cost 0.
        fallback_queries = [i.n_queries for i in interpretations[1:]]
        assert any(q > 0 for q in fallback_queries)

    def test_pair_residuals_are_own_solve_residuals(self, relu_api, blobs3):
        """Each derived pair's residual is finite, certified, and *not*
        simply copied from the base class's pair list (the old bug)."""
        interpretations = OpenAPIInterpreter(seed=22).interpret_all_classes(
            relu_api, blobs3.X[2]
        )
        base = interpretations[0]
        for interp in interpretations[1:]:
            c = interp.target_class
            for (a, b), est in interp.pair_estimates.items():
                assert a == c and b != c
                assert np.isfinite(est.residual)
                assert est.certified
            # The pair (c, 0) mirrors base pair (0, c): same system up to
            # sign, so its residual must match the base solve's.
            assert interp.pair_estimates[(c, 0)].residual == pytest.approx(
                base.pair_estimates[(0, c)].residual, rel=1e-6, abs=1e-12
            )


class TestNaiveMethod:
    def test_exact_in_ideal_case(self, linear_api, linear_model, blobs3):
        """One region everywhere -> the ideal case always holds."""
        x0 = blobs3.X[0]
        interp = NaiveInterpreter(0.1, seed=0).interpret(linear_api, x0, c=0)
        gt = ground_truth_decision_features(linear_model, x0, 0)
        np.testing.assert_allclose(interp.decision_features, gt, atol=1e-8)

    def test_not_certified(self, linear_api, blobs3):
        interp = NaiveInterpreter(0.1, seed=1).interpret(linear_api, blobs3.X[0])
        assert not interp.all_certified
        assert all(not e.certified for e in interp.pair_estimates.values())

    def test_wrong_when_crossing_regions(self, relu_api, relu_model, blobs3):
        """Theorem 1: big h mixes regions and the answer is silently wrong."""
        errors = []
        for i in range(6):
            x0 = blobs3.X[i]
            c = int(relu_model.predict(x0)[0])
            interp = NaiveInterpreter(0.5, seed=i).interpret(relu_api, x0, c)
            gt = ground_truth_decision_features(relu_model, x0, c)
            errors.append(np.abs(interp.decision_features - gt).sum())
        assert max(errors) > 1e-3

    def test_accurate_with_tiny_h_inside_region(self, relu_api, relu_model, blobs3):
        x0 = blobs3.X[0]
        c = int(relu_model.predict(x0)[0])
        interp = NaiveInterpreter(1e-7, seed=2).interpret(relu_api, x0, c)
        gt = ground_truth_decision_features(relu_model, x0, c)
        assert np.abs(interp.decision_features - gt).sum() < 1e-3

    def test_query_count(self, linear_model, blobs3):
        api = PredictionAPI(linear_model)
        interp = NaiveInterpreter(0.1, seed=3).interpret(api, blobs3.X[0])
        assert interp.n_queries == 1 + blobs3.n_features

    def test_samples_exposed(self, linear_api, blobs3):
        interp = NaiveInterpreter(0.1, seed=4).interpret(linear_api, blobs3.X[0])
        assert interp.samples is not None
        assert interp.samples.shape == (blobs3.n_features, blobs3.n_features)

    def test_validations(self, linear_api):
        with pytest.raises(ValidationError):
            NaiveInterpreter(0.0)
        with pytest.raises(ValidationError):
            NaiveInterpreter(0.1).interpret(linear_api, np.ones(2))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_openapi_exact_on_random_linear_models(seed):
    """Theorem 2 end-to-end: exactness for arbitrary softmax-linear models."""
    rng = np.random.default_rng(seed)
    d = int(rng.integers(2, 7))
    C = int(rng.integers(2, 5))
    model = SoftmaxRegression().set_parameters(
        rng.normal(size=(d, C)), rng.normal(size=C)
    )
    api = PredictionAPI(model)
    x0 = rng.uniform(-1, 1, size=d)
    interp = OpenAPIInterpreter(seed=seed).interpret(api, x0, c=0)
    gt = ground_truth_decision_features(model, x0, 0)
    assert interp.all_certified
    np.testing.assert_allclose(interp.decision_features, gt, atol=1e-7)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 200))
def test_property_openapi_exact_on_random_relu_nets(seed):
    """Exactness on untrained (random) ReLU networks of random sizes."""
    rng = np.random.default_rng(seed)
    d = int(rng.integers(3, 6))
    hidden = int(rng.integers(4, 10))
    net = ReLUNetwork([d, hidden, 3], seed=seed)
    api = PredictionAPI(net)
    x0 = rng.uniform(0, 1, size=d)
    interp = OpenAPIInterpreter(seed=seed).interpret(api, x0)
    gt = ground_truth_decision_features(net, x0, interp.target_class)
    np.testing.assert_allclose(interp.decision_features, gt, atol=1e-7)
