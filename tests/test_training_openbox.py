"""Tests for the trainer and the OpenBox ground-truth extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_blobs
from repro.exceptions import ValidationError
from repro.models import ReLUNetwork, TrainingConfig, train_network
from repro.models.openbox import (
    core_parameters_from_weights,
    decision_features_from_weights,
    extract_local_classifier,
    ground_truth_core_parameters,
    ground_truth_decision_features,
    relu_local_map,
)


class TestTrainingConfig:
    def test_defaults_valid(self):
        TrainingConfig()

    def test_invalid_rejected(self):
        with pytest.raises(ValidationError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValidationError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ValidationError):
            TrainingConfig(learning_rate=0)
        with pytest.raises(ValidationError):
            TrainingConfig(target_accuracy=0.0)


class TestTrainNetwork:
    def test_loss_decreases(self, blobs3):
        net = ReLUNetwork([6, 12, 3], seed=0)
        report = train_network(
            net, blobs3.X, blobs3.y,
            TrainingConfig(epochs=20, learning_rate=3e-3, seed=0),
        )
        assert report.loss_history[-1] < report.loss_history[0]
        assert report.final_train_accuracy > 0.8

    def test_early_stopping(self, blobs3):
        net = ReLUNetwork([6, 16, 3], seed=1)
        report = train_network(
            net, blobs3.X, blobs3.y,
            TrainingConfig(
                epochs=200, learning_rate=5e-3, target_accuracy=0.9, seed=1
            ),
        )
        assert report.stopped_early
        assert report.epochs_run < 200

    def test_empty_data_rejected(self):
        net = ReLUNetwork([3, 4, 2], seed=0)
        with pytest.raises(ValidationError):
            train_network(net, np.empty((0, 3)), np.empty(0, dtype=int))

    def test_mismatched_rows_rejected(self, blobs3):
        net = ReLUNetwork([6, 4, 3], seed=0)
        with pytest.raises(ValidationError):
            train_network(net, blobs3.X, blobs3.y[:-1])

    def test_reproducible(self, blobs3):
        def run():
            net = ReLUNetwork([6, 8, 3], seed=7)
            train_network(
                net, blobs3.X, blobs3.y,
                TrainingConfig(epochs=5, seed=7),
            )
            return net.decision_logits(blobs3.X[:5])

        np.testing.assert_array_equal(run(), run())


class TestReluLocalMap:
    def test_identity_for_all_on_masks(self):
        """With every unit active the map is the plain product of layers."""
        rng = np.random.default_rng(0)
        W1 = rng.normal(size=(3, 4))
        b1 = rng.normal(size=4)
        W2 = rng.normal(size=(4, 2))
        b2 = rng.normal(size=2)
        masks = [np.ones(4, dtype=bool)]
        M, k = relu_local_map([W1, W2], [b1, b2], masks)
        np.testing.assert_allclose(M, W1 @ W2)
        np.testing.assert_allclose(k, b1 @ W2 + b2)

    def test_all_off_masks_kill_input(self):
        rng = np.random.default_rng(1)
        W1 = rng.normal(size=(3, 4))
        b1 = rng.normal(size=4)
        W2 = rng.normal(size=(4, 2))
        b2 = rng.normal(size=2)
        M, k = relu_local_map([W1, W2], [b1, b2], [np.zeros(4, dtype=bool)])
        np.testing.assert_allclose(M, 0.0)
        np.testing.assert_allclose(k, b2)

    def test_mask_count_validated(self):
        W = [np.ones((2, 2)), np.ones((2, 2))]
        b = [np.zeros(2), np.zeros(2)]
        with pytest.raises(ValidationError):
            relu_local_map(W, b, [])
        with pytest.raises(ValidationError):
            relu_local_map(W, b, [np.ones(3, dtype=bool)])

    def test_weight_bias_count_validated(self):
        with pytest.raises(ValidationError):
            relu_local_map([np.ones((2, 2))], [], [])


class TestDecisionFeatureFormulas:
    def test_two_class_reduces_to_column_difference(self):
        W = np.array([[1.0, 3.0], [2.0, -1.0]])
        np.testing.assert_allclose(
            decision_features_from_weights(W, 0), W[:, 0] - W[:, 1]
        )
        np.testing.assert_allclose(
            decision_features_from_weights(W, 1), W[:, 1] - W[:, 0]
        )

    def test_multi_class_average(self):
        rng = np.random.default_rng(2)
        W = rng.normal(size=(4, 5))
        c = 2
        expected = np.mean(
            [W[:, c] - W[:, cp] for cp in range(5) if cp != c], axis=0
        )
        np.testing.assert_allclose(decision_features_from_weights(W, c), expected)

    def test_gauge_invariance(self):
        """Adding any vector to every column leaves D_c unchanged —
        the reason API-only recovery (which loses the gauge) is enough."""
        rng = np.random.default_rng(3)
        W = rng.normal(size=(4, 3))
        shift = rng.normal(size=4)
        shifted = W + shift[:, None]
        for c in range(3):
            np.testing.assert_allclose(
                decision_features_from_weights(W, c),
                decision_features_from_weights(shifted, c),
                atol=1e-12,
            )

    def test_validations(self):
        with pytest.raises(ValidationError):
            decision_features_from_weights(np.ones(3), 0)
        with pytest.raises(ValidationError):
            decision_features_from_weights(np.ones((3, 1)), 0)
        with pytest.raises(ValidationError):
            decision_features_from_weights(np.ones((3, 2)), 5)

    def test_core_parameters(self):
        W = np.array([[1.0, 3.0], [2.0, -1.0]])
        b = np.array([0.5, -0.5])
        D, B = core_parameters_from_weights(W, b, 0, 1)
        np.testing.assert_allclose(D, [-2.0, 3.0])
        assert B == pytest.approx(1.0)

    def test_core_parameters_antisymmetric(self):
        rng = np.random.default_rng(4)
        W = rng.normal(size=(3, 4))
        b = rng.normal(size=4)
        D01, B01 = core_parameters_from_weights(W, b, 0, 1)
        D10, B10 = core_parameters_from_weights(W, b, 1, 0)
        np.testing.assert_allclose(D01, -D10)
        assert B01 == pytest.approx(-B10)

    def test_core_parameters_validations(self):
        W = np.ones((3, 2))
        b = np.zeros(2)
        with pytest.raises(ValidationError):
            core_parameters_from_weights(W, b, 0, 0)
        with pytest.raises(ValidationError):
            core_parameters_from_weights(W, b, 0, 5)
        with pytest.raises(ValidationError):
            core_parameters_from_weights(W, np.zeros(3), 0, 1)


class TestGroundTruthHelpers:
    def test_ground_truth_consistency(self, relu_model, blobs3):
        x = blobs3.X[0]
        local = extract_local_classifier(relu_model, x)
        gt = ground_truth_decision_features(relu_model, x, 1)
        np.testing.assert_allclose(
            gt, decision_features_from_weights(local.weights, 1)
        )
        D, B = ground_truth_core_parameters(relu_model, x, 1, 2)
        np.testing.assert_allclose(D, local.weights[:, 1] - local.weights[:, 2])
        assert B == pytest.approx(float(local.bias[1] - local.bias[2]))

    def test_log_odds_identity(self, relu_model, blobs3):
        """D_{c,c'}^T x + B_{c,c'} equals the softmax log-odds (Equation 2)."""
        x = blobs3.X[4]
        probs = relu_model.predict_proba(x)
        for c in range(3):
            for cp in range(3):
                if c == cp:
                    continue
                D, B = ground_truth_core_parameters(relu_model, x, c, cp)
                assert float(D @ x + B) == pytest.approx(
                    float(np.log(probs[c] / probs[cp])), abs=1e-9
                )
