"""Consolidated property-based tests of the paper's formal results.

Each test here is a Hypothesis rendition of a theorem/lemma, run against
randomly generated models and instances — the strongest correctness
evidence the suite provides, because nothing is tuned to a fixture.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import PredictionAPI
from repro.core import (
    BatchOpenAPIInterpreter,
    NaiveInterpreter,
    OpenAPIInterpreter,
    verify_interpretation,
)
from repro.core.equations import pairwise_log_odds_targets
from repro.models import MaxOutNetwork, ReLUNetwork, SoftmaxRegression
from repro.models.openbox import (
    decision_features_from_weights,
    ground_truth_core_parameters,
    ground_truth_decision_features,
)


def _random_linear_model(rng, d, C):
    return SoftmaxRegression().set_parameters(
        rng.normal(size=(d, C)), rng.normal(size=C)
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_equation2_log_odds_identity(seed):
    """Equation 2: ln(y_c/y_c') == D_{c,c'}^T x + B_{c,c'} inside a region,
    for random linear models and random inputs."""
    rng = np.random.default_rng(seed)
    d, C = int(rng.integers(2, 8)), int(rng.integers(2, 6))
    model = _random_linear_model(rng, d, C)
    x = rng.normal(size=d)
    probs = model.predict_proba(x)[None, :]
    c = int(rng.integers(0, C))
    targets, pairs = pairwise_log_odds_targets(probs, c)
    for col, (cc, cp) in enumerate(pairs):
        D, B = ground_truth_core_parameters(model, x, cc, cp)
        assert float(D @ x + B) == pytest.approx(float(targets[0, col]), abs=1e-8)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_equation1_antisymmetry_and_zero_sum(seed):
    """D_c vectors over all classes sum to zero (pairwise antisymmetry)."""
    rng = np.random.default_rng(seed)
    d, C = int(rng.integers(2, 8)), int(rng.integers(2, 6))
    W = rng.normal(size=(d, C))
    total = np.sum(
        [decision_features_from_weights(W, c) for c in range(C)], axis=0
    )
    np.testing.assert_allclose(total, 0.0, atol=1e-10)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 5000))
def test_theorem2_batch_and_sequential_agree_with_truth(seed):
    """Theorem 2 end to end for both interpreter implementations, on a
    random untrained ReLU network (worst case: irregular regions)."""
    rng = np.random.default_rng(seed)
    d = int(rng.integers(3, 6))
    net = ReLUNetwork([d, int(rng.integers(4, 8)), 3], seed=seed)
    api = PredictionAPI(net)
    x0 = rng.uniform(0, 1, size=d)

    sequential = OpenAPIInterpreter(seed=seed).interpret(api, x0)
    batch = BatchOpenAPIInterpreter(seed=seed + 1).interpret_batch(
        api, x0[None, :], np.array([sequential.target_class])
    )
    gt = ground_truth_decision_features(net, x0, sequential.target_class)
    np.testing.assert_allclose(sequential.decision_features, gt, atol=1e-7)
    assert batch.interpretations[0] is not None
    np.testing.assert_allclose(
        batch.interpretations[0].decision_features, gt, atol=1e-7
    )


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2000))
def test_theorem2_on_random_maxout(seed):
    """Exactness extends to the MaxOut member of the PLM family."""
    rng = np.random.default_rng(seed)
    d = int(rng.integers(3, 5))
    net = MaxOutNetwork([d, 4, 3], pieces=2, seed=seed)
    api = PredictionAPI(net)
    x0 = rng.uniform(0, 1, size=d)
    interp = OpenAPIInterpreter(seed=seed).interpret(api, x0)
    gt = ground_truth_decision_features(net, x0, interp.target_class)
    np.testing.assert_allclose(interp.decision_features, gt, atol=1e-7)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 5000))
def test_verification_accepts_truth_rejects_perturbation(seed):
    """A certified claim verifies; the same claim with perturbed weights
    does not (falsifiability, on random linear models)."""
    import dataclasses

    rng = np.random.default_rng(seed)
    d, C = int(rng.integers(2, 6)), int(rng.integers(2, 4))
    model = _random_linear_model(rng, d, C)
    api = PredictionAPI(model)
    x0 = rng.normal(size=d)
    interp = OpenAPIInterpreter(seed=seed).interpret(api, x0)
    assert verify_interpretation(api, interp, seed=seed).passed

    pair, est = next(iter(interp.pair_estimates.items()))
    bad_est = dataclasses.replace(
        est, weights=est.weights + rng.normal(size=d) + 0.5
    )
    tampered = dataclasses.replace(
        interp, pair_estimates={**interp.pair_estimates, pair: bad_est}
    )
    assert not verify_interpretation(api, tampered, seed=seed).passed


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 3000))
def test_io_round_trip_random_networks(seed):
    """Serialization preserves predictions bit-for-bit on random nets."""
    import tempfile

    from repro.io import load_model, save_model

    rng = np.random.default_rng(seed)
    d = int(rng.integers(2, 6))
    net = ReLUNetwork([d, int(rng.integers(3, 7)), 3], seed=seed)
    X = rng.uniform(0, 1, size=(5, d))
    with tempfile.NamedTemporaryFile(suffix=".npz") as handle:
        save_model(net, handle.name)
        loaded = load_model(handle.name)
    np.testing.assert_array_equal(
        loaded.decision_logits(X), net.decision_logits(X)
    )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 5000), h=st.floats(1e-6, 1e-2))
def test_naive_exact_in_single_region_models(seed, h):
    """Theorem 1's complement: when the ideal case *does* hold (single
    region), the naive method is exact for any h."""
    rng = np.random.default_rng(seed)
    d, C = int(rng.integers(2, 6)), int(rng.integers(2, 4))
    model = _random_linear_model(rng, d, C)
    api = PredictionAPI(model)
    x0 = rng.normal(size=d)
    interp = NaiveInterpreter(h, seed=seed).interpret(api, x0, c=0)
    gt = ground_truth_decision_features(model, x0, 0)
    np.testing.assert_allclose(interp.decision_features, gt, atol=1e-5)
