"""Sharded serving tier: routing, bounded eviction, snapshots, workers.

Covers the shard module's three contracts:

* **routing** — region signatures are stable and inserts land on exactly
  one shard, while lookups find entries regardless of which shard holds
  them;
* **eviction transparency** — a bounded/sharded cache may *forget*
  regions (costing extra solves) but must never *distort* answers:
  everything served from cache is bitwise a fresh certified solve,
  across LRU and TTL policies and across a snapshot save -> load
  round trip;
* **multi-worker service** — concurrent flush workers with a
  backpressured queue preserve the response contract and the meter
  accounting identities.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import PredictionAPI
from repro.core import CoreParameterEstimate, Interpretation, OpenAPIInterpreter
from repro.exceptions import ValidationError
from repro.models.openbox import ground_truth_decision_features
from repro.serving import (
    InterpretationService,
    RegionCache,
    ShardedInterpretationService,
    ShardedRegionCache,
    region_signature,
    signature_of,
)


def _affine_interp(x0, W, b, *, target_class=0):
    """A hand-built certified interpretation claiming log-odds W @ x + b
    for pairs ``(target, j)`` — full geometric control for cache tests."""
    others = [j for j in range(W.shape[0] + 1) if j != target_class]
    pairs = {
        (target_class, j): CoreParameterEstimate(
            c=target_class, c_prime=j, weights=W[i], intercept=float(b[i]),
            certified=True,
        )
        for i, j in enumerate(others)
    }
    return Interpretation(
        x0=x0, target_class=target_class, decision_features=W.mean(axis=0),
        pair_estimates=pairs, method="test", final_edge=1.0,
    )


def _probs_for_claims(t):
    """A probability row whose log-odds ``ln(y_0 / y_j)`` equal ``t[j-1]``."""
    logits = np.concatenate([[0.0], -np.asarray(t, dtype=np.float64)])
    z = np.exp(logits - logits.max())
    return z / z.sum()


def _random_interps(rng, n, d=5, n_pairs=2):
    out = []
    for _ in range(n):
        W = rng.normal(size=(n_pairs, d))
        b = rng.normal(size=n_pairs)
        out.append((_affine_interp(rng.normal(size=d), W, b), W, b))
    return out


class FakeClock:
    """Deterministic monotonic clock for TTL tests."""

    def __init__(self):
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class TestRegionSignature:
    def test_stable_across_calls_and_processes(self):
        rng = np.random.default_rng(0)
        W, b = rng.normal(size=(2, 4)), rng.normal(size=2)
        pairs = ((0, 1), (0, 2))
        sig = region_signature(0, pairs, W, b)
        assert sig == region_signature(0, pairs, W, b)
        # CRC-based, not Python hash() — pin one literal value so a salted
        # or platform-dependent hash cannot sneak in (snapshot portability).
        fixed = region_signature(
            1, ((1, 0),), np.array([[1.0, 2.0]]), np.array([3.0])
        )
        assert fixed == region_signature(
            1, ((1, 0),), np.array([[1.0, 2.0]]), np.array([3.0])
        )
        assert 0 <= fixed < 2**32

    def test_quantization_collapses_solver_noise(self):
        rng = np.random.default_rng(1)
        W, b = rng.normal(size=(2, 4)), rng.normal(size=2)
        pairs = ((0, 1), (0, 2))
        noisy = region_signature(0, pairs, W + 1e-10, b - 1e-10)
        assert noisy == region_signature(0, pairs, W, b)

    def test_distinct_regions_distinct_signatures(self):
        rng = np.random.default_rng(2)
        pairs = ((0, 1), (0, 2))
        sigs = {
            region_signature(
                0, pairs, rng.normal(size=(2, 4)), rng.normal(size=2)
            )
            for _ in range(64)
        }
        assert len(sigs) == 64

    def test_signature_of_matches_manual(self):
        rng = np.random.default_rng(3)
        interp, W, b = _random_interps(rng, 1)[0]
        pairs = tuple(sorted(interp.pair_estimates))
        assert signature_of(interp) == region_signature(0, pairs, W, b)


class TestShardedRegionCache:
    def test_insert_routes_to_one_shard_lookup_finds_it(self):
        rng = np.random.default_rng(4)
        cache = ShardedRegionCache(n_shards=4, max_entries=64)
        for interp, W, b in _random_interps(rng, 12):
            assert cache.insert(interp)
            x, y = interp.x0, _probs_for_claims(W @ interp.x0 + b)
            hit = cache.lookup(x, y, 0)
            assert hit is not None
            assert np.array_equal(
                hit.decision_features, interp.decision_features
            )
        assert len(cache) == 12
        # Hash routing spreads entries over more than one shard.
        assert sum(s > 0 for s in cache.stats().per_shard_size) > 1

    def test_miss_and_per_shard_stats(self):
        rng = np.random.default_rng(5)
        cache = ShardedRegionCache(n_shards=2, max_entries=16)
        interp, W, b = _random_interps(rng, 1)[0]
        cache.insert(interp)
        assert cache.lookup(
            interp.x0, _probs_for_claims(W @ interp.x0 + b), 0
        ) is not None
        assert cache.lookup(
            interp.x0, _probs_for_claims(W @ interp.x0 + b + 5.0), 0
        ) is None
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)
        assert sum(stats.per_shard_hits) == 1
        assert sum(stats.per_shard_hit_rate) == pytest.approx(0.5)

    def test_global_bound_and_eviction_counting(self):
        rng = np.random.default_rng(6)
        cache = ShardedRegionCache(n_shards=2, max_entries=4)
        for interp, _, _ in _random_interps(rng, 20):
            cache.insert(interp)
        stats = cache.stats()
        # Per-shard bound is ceil(4 / 2) = 2, so at most 4 resident.
        assert len(cache) <= 4
        assert stats.evictions >= 16
        assert stats.resident_bytes > 0
        assert all(s <= 2 for s in stats.per_shard_size)

    def test_duplicate_insert_refreshes(self):
        rng = np.random.default_rng(7)
        interp, W, b = _random_interps(rng, 1)[0]
        cache = ShardedRegionCache(n_shards=4)
        assert cache.insert(interp)
        again = _affine_interp(interp.x0 + 1e-9, W, b)
        assert not cache.insert(again)
        assert cache.stats().duplicates_skipped == 1
        assert len(cache) == 1

    def test_rejects_uncertified_and_dim_mismatch(self):
        rng = np.random.default_rng(8)
        cache = ShardedRegionCache(n_shards=2)
        interp, _, _ = _random_interps(rng, 1, d=5)[0]
        cache.insert(interp)
        bad_dim, _, _ = _random_interps(rng, 1, d=3)[0]
        with pytest.raises(ValidationError, match=r"\b3\b.*\b5\b"):
            cache.insert(bad_dim)
        with pytest.raises(ValidationError, match=r"\b4\b.*\b5\b"):
            cache.lookup(np.zeros(4), _probs_for_claims([0.0, 0.0]), 0)
        uncertified = Interpretation(
            x0=np.zeros(5), target_class=0, decision_features=np.zeros(5),
        )
        with pytest.raises(ValidationError, match="certified"):
            cache.insert(uncertified)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ShardedRegionCache(n_shards=0)
        with pytest.raises(ValidationError):
            ShardedRegionCache(max_entries=0)
        with pytest.raises(ValidationError):
            ShardedRegionCache(eviction="fifo")

    def test_ttl_expiry_per_shard(self):
        rng = np.random.default_rng(9)
        clock = FakeClock()
        cache = ShardedRegionCache(
            n_shards=2, eviction="ttl", ttl_s=10.0, clock=clock
        )
        interp, W, b = _random_interps(rng, 1)[0]
        cache.insert(interp)
        y = _probs_for_claims(W @ interp.x0 + b)
        clock.advance(9.0)
        assert cache.lookup(interp.x0, y, 0) is not None  # lease refreshed
        clock.advance(9.0)
        assert cache.lookup(interp.x0, y, 0) is not None
        clock.advance(11.0)
        assert cache.lookup(interp.x0, y, 0) is None
        stats = cache.stats()
        assert stats.evictions == 1 and stats.size == 0


class TestSnapshots:
    def _filled(self, rng, n=10, cls=ShardedRegionCache, **kwargs):
        cache = cls(**kwargs)
        interps = _random_interps(rng, n)
        for interp, _, _ in interps:
            cache.insert(interp)
        return cache, interps

    def test_sharded_round_trip_bitwise(self, tmp_path):
        rng = np.random.default_rng(10)
        cache, interps = self._filled(rng, n_shards=4, max_entries=64)
        path = tmp_path / "regions.npz"
        assert cache.save(path) == 10
        restored = ShardedRegionCache(n_shards=4, max_entries=64)
        assert restored.load(path) == 10
        for interp, W, b in interps:
            y = _probs_for_claims(W @ interp.x0 + b)
            hit = restored.lookup(interp.x0, y, 0)
            assert hit is not None
            assert (
                hit.decision_features.tobytes()
                == interp.decision_features.tobytes()
            )
            for pair, est in interp.pair_estimates.items():
                back = hit.pair_estimates[pair]
                assert back.weights.tobytes() == est.weights.tobytes()
                assert back.intercept == est.intercept

    def test_snapshot_portable_across_shard_counts_and_tiers(self, tmp_path):
        rng = np.random.default_rng(11)
        cache, interps = self._filled(rng, n_shards=4, max_entries=64)
        path = tmp_path / "regions.npz"
        cache.save(path)
        more_shards = ShardedRegionCache(n_shards=8, max_entries=64)
        assert more_shards.load(path) == 10
        mono = RegionCache(max_entries=64)
        assert mono.load(path) == 10
        for target in (more_shards, mono):
            for interp, W, b in interps:
                y = _probs_for_claims(W @ interp.x0 + b)
                hit = target.lookup(interp.x0, y, 0)
                assert hit is not None
                assert (
                    hit.decision_features.tobytes()
                    == interp.decision_features.tobytes()
                )

    def test_monolithic_round_trip_and_lru_order(self, tmp_path):
        rng = np.random.default_rng(12)
        cache, interps = self._filled(rng, cls=RegionCache, max_entries=64)
        path = tmp_path / "mono.npz"
        cache.save(path)
        # Loading into a smaller cache keeps the *most recent* entries.
        small = RegionCache(max_entries=3)
        small.load(path)
        assert len(small) == 3
        kept = 0
        for interp, W, b in interps[-3:]:
            y = _probs_for_claims(W @ interp.x0 + b)
            kept += small.lookup(interp.x0, y, 0) is not None
        assert kept == 3

    def test_load_requires_empty_cache(self, tmp_path):
        rng = np.random.default_rng(13)
        cache, _ = self._filled(rng, n_shards=2)
        path = tmp_path / "regions.npz"
        cache.save(path)
        with pytest.raises(ValidationError, match="empty"):
            cache.load(path)
        cache.clear()
        assert cache.load(path) == 10

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(ValidationError, match="version"):
            RegionCache().load(path)


class TestShardedService:
    def test_basic_hit_after_solve(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        service = ShardedInterpretationService(api, n_shards=4, seed=0)
        first = service.interpret(blobs3.X[0])
        again = service.interpret(blobs3.X[0])
        assert first.ok and not first.served_from_cache
        assert again.ok and again.served_from_cache
        assert service.stats().n_queries == api.query_count
        assert service.cache.stats().hits >= 1

    def test_validation(self, relu_model):
        api = PredictionAPI(relu_model)
        with pytest.raises(ValidationError):
            ShardedInterpretationService(api, n_workers=0)
        with pytest.raises(ValidationError):
            ShardedInterpretationService(api, max_queue=0)

    def test_concurrent_clients_multi_worker(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        service = ShardedInterpretationService(
            api, n_workers=3, n_shards=4, seed=0,
            max_batch_size=4, max_wait_s=0.002, max_queue=8,
        )
        results: dict[int, bool] = {}

        def client(i: int) -> None:
            response = service.interpret(blobs3.X[i % 6], timeout=30.0)
            results[i] = response.ok

        with service:
            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(24)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(results) == 24 and all(results.values())
        stats = service.stats()
        assert stats.n_requests == 24
        # Meter identities survive concurrent flush workers.
        assert stats.n_queries == api.query_count
        assert stats.round_trips == api.request_count

    def test_backpressure_bounds_queue(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        service = ShardedInterpretationService(
            api, n_workers=1, seed=0, max_queue=2, max_batch_size=2,
            max_wait_s=0.0,
        )
        depths: list[int] = []
        pendings = []

        def producer() -> None:
            for _ in range(10):
                pendings.append(service.submit(blobs3.X[0]))
                depths.append(len(service._queue))

        with service:
            thread = threading.Thread(target=producer)
            thread.start()
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            for pending in pendings:
                assert pending.result(timeout=30.0).ok
        # submit returned only when the queue had room: depth never
        # exceeded the bound at any observation point.
        assert max(depths) <= 2

    def test_inline_usage_ignores_backpressure(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        service = ShardedInterpretationService(
            api, n_workers=2, seed=0, max_queue=1
        )
        responses = service.interpret_many(blobs3.X[:4])  # no start(): inline
        assert all(r.ok for r in responses)

    def test_per_worker_interpreters_are_distinct(self, relu_model):
        api = PredictionAPI(relu_model)
        service = ShardedInterpretationService(api, n_workers=3, seed=7)
        assert len(service._interpreters) == 3
        assert len({id(i) for i in service._interpreters}) == 3

    def test_accepts_any_seedlike(self, relu_model, blobs3):
        """Worker-seed derivation must handle every SeedLike form, not
        just ints (regression: int(seed) blew up on Generators)."""
        for seed in (None, 3, np.random.default_rng(0),
                     np.random.SeedSequence(5)):
            api = PredictionAPI(relu_model)
            service = ShardedInterpretationService(
                api, n_workers=2, seed=seed
            )
            assert service.interpret(blobs3.X[0]).ok


class TestEvictionTransparency:
    """Bounded/sharded caches may forget, but never distort (satellite
    property): everything cache-served is bitwise a fresh certified
    solve, and everything matches the OpenBox ground truth — across
    LRU, TTL, sharding, and a snapshot round trip."""

    def _request_stream(self, X, seed, n=30):
        rng = np.random.default_rng(seed)
        pool = X[:6]
        return pool[rng.integers(0, len(pool), size=n)]

    def _replay_and_audit(self, model, service, requests):
        responses = service.interpret_many(requests)
        fresh = {
            r.interpretation.decision_features.tobytes()
            for r in responses
            if r.ok and not r.served_from_cache
        }
        n_hits = 0
        for x0, response in zip(requests, responses):
            assert response.ok
            interp = response.interpretation
            gt = ground_truth_decision_features(
                model, x0, interp.target_class
            )
            np.testing.assert_allclose(
                interp.decision_features, gt, atol=1e-7
            )
            if response.served_from_cache:
                assert interp.decision_features.tobytes() in fresh
                n_hits += 1
        return responses, fresh, n_hits

    @pytest.mark.parametrize(
        "cache_factory",
        [
            lambda: RegionCache(max_entries=2),
            lambda: RegionCache(eviction="ttl", ttl_s=1e9, max_entries=2),
            lambda: ShardedRegionCache(n_shards=2, max_entries=2),
            lambda: ShardedRegionCache(
                n_shards=2, max_entries=2, eviction="ttl", ttl_s=1e9
            ),
        ],
        ids=["lru", "ttl", "sharded-lru", "sharded-ttl"],
    )
    def test_bounded_cache_is_transparent(
        self, relu_model, blobs3, cache_factory
    ):
        api = PredictionAPI(relu_model)
        cache = cache_factory()
        service = InterpretationService(api, cache=cache, seed=0,
                                        max_batch_size=4)
        requests = self._request_stream(blobs3.X, seed=0)
        _, _, n_hits = self._replay_and_audit(relu_model, service, requests)
        # The tiny capacity must actually evict (the property is about
        # serving *through* eviction, not around it) yet still serve hits.
        assert cache.stats().evictions > 0
        assert n_hits > 0

    def test_ttl_expiry_mid_stream_stays_transparent(
        self, relu_model, blobs3
    ):
        clock = FakeClock()
        api = PredictionAPI(relu_model)
        cache = ShardedRegionCache(
            n_shards=2, max_entries=64, eviction="ttl", ttl_s=5.0,
            clock=clock,
        )
        service = InterpretationService(api, cache=cache, seed=0,
                                        max_batch_size=4)
        requests = self._request_stream(blobs3.X, seed=1, n=12)
        for chunk in np.array_split(requests, 4):
            self._replay_and_audit(relu_model, service, chunk)
            clock.advance(6.0)  # every resident region expires between chunks
        assert cache.stats().evictions > 0

    def test_snapshot_round_trip_transparent(
        self, relu_model, blobs3, tmp_path
    ):
        api = PredictionAPI(relu_model)
        service = ShardedInterpretationService(
            api, n_shards=2, seed=0, max_batch_size=4
        )
        requests = self._request_stream(blobs3.X, seed=2)
        self._replay_and_audit(relu_model, service, requests)
        saved = {
            entry.decision_features.tobytes()
            for shard in service.cache.shards
            for entry in shard._entries.values()
        }
        path = tmp_path / "warm.npz"
        service.cache.save(path)

        warm_cache = ShardedRegionCache(n_shards=2)
        warm_cache.load(path)
        warm_api = PredictionAPI(relu_model)
        warm_service = ShardedInterpretationService(
            warm_api, cache=warm_cache, seed=0, max_batch_size=4
        )
        warm_responses = warm_service.interpret_many(requests)
        warm_fresh = {
            r.interpretation.decision_features.tobytes()
            for r in warm_responses
            if r.ok and not r.served_from_cache
        }
        n_hits = 0
        for x0, response in zip(requests, warm_responses):
            assert response.ok
            interp = response.interpretation
            gt = ground_truth_decision_features(
                relu_model, x0, interp.target_class
            )
            np.testing.assert_allclose(interp.decision_features, gt,
                                       atol=1e-7)
            if response.served_from_cache:
                assert interp.decision_features.tobytes() in saved | warm_fresh
                n_hits += 1
        # The snapshot actually served: hits from regions solved in the
        # *previous* process's replay.
        assert n_hits > 0
        assert warm_service.stats().hit_rate > 0
