"""Tests for post-hoc interpretation verification (repro.core.verification)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api import PredictionAPI
from repro.core import (
    NaiveInterpreter,
    OpenAPIInterpreter,
    verify_interpretation,
)
from repro.core.types import CoreParameterEstimate, Interpretation
from repro.exceptions import ValidationError


class TestVerifyGenuineInterpretations:
    def test_openapi_passes_on_linear_model(self, linear_api, blobs3):
        interp = OpenAPIInterpreter(seed=0).interpret(linear_api, blobs3.X[0])
        report = verify_interpretation(linear_api, interp, seed=1)
        assert report.passed
        assert report.max_error < 1e-9
        assert report.n_probes == 16

    def test_openapi_passes_on_plnn(self, relu_api, blobs3):
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, blobs3.X[2])
        report = verify_interpretation(relu_api, interp, seed=1)
        assert report.passed
        assert set(report.per_pair_max) == set(interp.pair_estimates)

    def test_openapi_passes_on_lmt(self, lmt_api, xor_dataset):
        interp = OpenAPIInterpreter(seed=0).interpret(lmt_api, xor_dataset.X[0])
        report = verify_interpretation(lmt_api, interp, seed=1)
        assert report.passed

    def test_starts_from_final_edge_by_default(self, relu_api, blobs3):
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, blobs3.X[0])
        report = verify_interpretation(relu_api, interp, seed=1)
        assert report.passed
        # Adaptive probing never grows beyond the certified starting edge.
        assert report.edge <= interp.final_edge
        assert report.error_at_x0 <= report.tolerance

    def test_query_cost(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        interp = OpenAPIInterpreter(seed=0).interpret(api, blobs3.X[0])
        before = api.query_count
        report = verify_interpretation(api, interp, n_probes=10, seed=1)
        # 1 query for x0 plus n_probes per attempted edge.
        assert api.query_count - before == 1 + report.attempts * 10


class TestVerifyCatchesBadInterpretations:
    def test_tampered_weights_fail(self, relu_api, blobs3):
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, blobs3.X[0])
        pair, estimate = next(iter(interp.pair_estimates.items()))
        tampered_est = CoreParameterEstimate(
            c=estimate.c,
            c_prime=estimate.c_prime,
            weights=estimate.weights + 0.5,
            intercept=estimate.intercept,
            certified=True,
        )
        tampered = dataclasses.replace(
            interp,
            pair_estimates={**interp.pair_estimates, pair: tampered_est},
        )
        report = verify_interpretation(relu_api, tampered, seed=1)
        assert not report.passed
        assert report.per_pair_max[pair] > 1e-3

    def test_naive_cross_region_answer_fails(self, relu_api, relu_model, blobs3):
        """A large-h naive interpretation is falsified — already at x0."""
        failed_any = False
        for i in range(6):
            x0 = blobs3.X[i]
            c = int(relu_model.predict(x0)[0])
            interp = NaiveInterpreter(0.5, seed=i).interpret(relu_api, x0, c)
            report = verify_interpretation(
                relu_api, interp, edge=0.5, n_probes=16, seed=i
            )
            if not report.passed:
                failed_any = True
                # Subtlety: the determined system satisfies x0's own
                # equation *exactly* (x0 is one of its d+1 equations), so a
                # cross-region blend passes at x0 — it is the fresh probes,
                # at every attempted edge, that falsify it.
                assert report.error_at_x0 <= report.tolerance
                assert report.max_error > report.tolerance
                assert report.attempts > 1
        assert failed_any

    def test_wrong_model_behind_api_fails(self, relu_api, linear_api, blobs3):
        """Interpretation of model A verified against model B's API fails."""
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, blobs3.X[0])
        report = verify_interpretation(linear_api, interp, seed=1)
        assert not report.passed


class TestValidation:
    def test_empty_pair_estimates_rejected(self, linear_api, blobs3):
        bare = Interpretation(
            x0=blobs3.X[0],
            target_class=0,
            decision_features=np.zeros(6),
        )
        with pytest.raises(ValidationError):
            verify_interpretation(linear_api, bare)

    def test_dimension_mismatch_rejected(self, linear_api):
        interp = Interpretation(
            x0=np.zeros(3),
            target_class=0,
            decision_features=np.zeros(3),
            pair_estimates={
                (0, 1): CoreParameterEstimate(
                    c=0, c_prime=1, weights=np.zeros(3), intercept=0.0
                )
            },
        )
        with pytest.raises(ValidationError):
            verify_interpretation(linear_api, interp)

    def test_invalid_args_rejected(self, linear_api, blobs3):
        interp = OpenAPIInterpreter(seed=0).interpret(linear_api, blobs3.X[0])
        with pytest.raises(ValidationError):
            verify_interpretation(linear_api, interp, n_probes=0)
        with pytest.raises(ValidationError):
            verify_interpretation(linear_api, interp, tolerance=0.0)
        with pytest.raises(ValidationError):
            verify_interpretation(linear_api, interp, edge=0.0)

    def test_adaptive_probing_deterministic_under_fixed_seed(
        self, relu_model, blobs3
    ):
        """Same seed, same interpretation ⇒ bit-identical report, however
        many shrink attempts the adaptive probing loop needed."""
        api = PredictionAPI(relu_model)
        interp = OpenAPIInterpreter(seed=0).interpret(api, blobs3.X[3])
        reports = [
            verify_interpretation(
                api, interp, edge=2.0, n_probes=12, seed=42
            )
            for _ in range(2)
        ]
        first, second = reports
        assert first.passed == second.passed
        assert first.attempts == second.attempts
        assert first.edge == second.edge
        assert first.max_error == second.max_error
        assert first.mean_error == second.mean_error
        assert first.error_at_x0 == second.error_at_x0
        assert first.per_pair_max == second.per_pair_max
        # A different seed draws different probes: with a starting edge
        # this large, the shrink trajectory is exercised (attempts >= 1
        # and error fields populated either way).
        assert first.attempts >= 1

    def test_shrink_budget_exhaustion_reported(self, relu_api, blobs3):
        """A correct claim probed at an absurd edge exhausts the shrink
        budget: the report must say how hard it tried and at which edge
        it gave up — not pass, and not lie about x0."""
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, blobs3.X[0])
        report = verify_interpretation(
            relu_api, interp, edge=1e6, max_shrinks=2, n_probes=16, seed=1
        )
        assert not report.passed
        # The claim itself is right: x0 is inside tolerance.
        assert report.error_at_x0 <= report.tolerance
        # All max_shrinks + 1 edges were attempted before giving up...
        assert report.attempts == 3
        # ...and the reported edge is the final halved one.
        assert report.edge == pytest.approx(1e6 / 4.0)
        assert report.max_error > report.tolerance

    def test_fabricated_interpretation_fails_at_x0_without_probing(
        self, relu_api, blobs3
    ):
        """A fabricated claim (weights invented wholesale) dies at the
        instance itself: no probe sampling happens, attempts stays 1."""
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, blobs3.X[0])
        rng = np.random.default_rng(0)
        fabricated_estimates = {
            pair: CoreParameterEstimate(
                c=est.c,
                c_prime=est.c_prime,
                weights=rng.normal(size=est.weights.shape),
                intercept=float(rng.normal()),
                certified=True,
            )
            for pair, est in interp.pair_estimates.items()
        }
        fabricated = dataclasses.replace(
            interp, pair_estimates=fabricated_estimates
        )
        before = relu_api.query_count
        report = verify_interpretation(
            relu_api, fabricated, n_probes=16, max_shrinks=8, seed=1
        )
        assert not report.passed
        assert report.error_at_x0 > report.tolerance
        assert report.attempts == 1
        # Only the x0 probe was spent — the sampling loop never ran.
        assert relu_api.query_count - before == 1

    def test_default_edge_for_handmade_interpretation(self, linear_model, blobs3):
        """Hand-built interpretations (no final_edge) get the fallback."""
        api = PredictionAPI(linear_model)
        W, b = linear_model.weights, linear_model.bias
        interp = Interpretation(
            x0=blobs3.X[0],
            target_class=0,
            decision_features=np.zeros(6),
            pair_estimates={
                (0, 1): CoreParameterEstimate(
                    c=0, c_prime=1,
                    weights=W[:, 0] - W[:, 1],
                    intercept=float(b[0] - b[1]),
                )
            },
        )
        report = verify_interpretation(api, interp, seed=0)
        assert report.edge == 0.25
        assert report.passed
