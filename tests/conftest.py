"""Shared fixtures: small trained models over controllable datasets.

Everything is session-scoped — training even the small networks hundreds
of times would dominate the suite's runtime, and the models are treated as
immutable by all tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PredictionAPI
from repro.data import Dataset, make_blobs
from repro.models import (
    LogisticModelTree,
    MaxOutNetwork,
    ReLUNetwork,
    SoftmaxRegression,
    TrainingConfig,
    train_network,
)


@pytest.fixture(scope="session")
def blobs3() -> Dataset:
    """Well-separated 3-class Gaussian blobs in 6 dimensions."""
    return make_blobs(300, n_features=6, n_classes=3, separation=4.0, seed=10)


@pytest.fixture(scope="session")
def xor_dataset() -> Dataset:
    """A 2-class dataset no single linear classifier can fit (XOR layout).

    Forces the LMT to actually split, producing a multi-region PLM.
    """
    rng = np.random.default_rng(11)
    n_per = 90
    centers = np.array(
        [[0.2, 0.2], [0.8, 0.8], [0.2, 0.8], [0.8, 0.2]], dtype=np.float64
    )
    labels = np.array([0, 0, 1, 1])
    X = np.vstack(
        [c + rng.normal(0, 0.07, size=(n_per, 2)) for c in centers]
    )
    y = np.repeat(labels, n_per)
    perm = rng.permutation(X.shape[0])
    return Dataset(X=np.clip(X[perm], 0, 1), y=y[perm], name="xor")


@pytest.fixture(scope="session")
def linear_model(blobs3: Dataset) -> SoftmaxRegression:
    return SoftmaxRegression(seed=0).fit(blobs3.X, blobs3.y)


@pytest.fixture(scope="session")
def linear_api(linear_model: SoftmaxRegression) -> PredictionAPI:
    return PredictionAPI(linear_model)


@pytest.fixture(scope="session")
def relu_model(blobs3: Dataset) -> ReLUNetwork:
    net = ReLUNetwork([6, 16, 8, 3], seed=1)
    train_network(
        net,
        blobs3.X,
        blobs3.y,
        TrainingConfig(epochs=60, learning_rate=3e-3, seed=1),
    )
    return net


@pytest.fixture(scope="session")
def relu_api(relu_model: ReLUNetwork) -> PredictionAPI:
    return PredictionAPI(relu_model)


@pytest.fixture(scope="session")
def maxout_model(blobs3: Dataset) -> MaxOutNetwork:
    net = MaxOutNetwork([6, 8, 3], pieces=3, seed=2)
    train_network(
        net,
        blobs3.X,
        blobs3.y,
        TrainingConfig(epochs=60, learning_rate=3e-3, seed=2),
    )
    return net


@pytest.fixture(scope="session")
def maxout_api(maxout_model: MaxOutNetwork) -> PredictionAPI:
    return PredictionAPI(maxout_model)


@pytest.fixture(scope="session")
def lmt_model(xor_dataset: Dataset) -> LogisticModelTree:
    lmt = LogisticModelTree(
        min_samples_split=40,
        leaf_accuracy_stop=0.95,
        max_depth=4,
        l1=0.0,
        seed=3,
    )
    return lmt.fit(xor_dataset.X, xor_dataset.y)


@pytest.fixture(scope="session")
def lmt_api(lmt_model: LogisticModelTree) -> PredictionAPI:
    return PredictionAPI(lmt_model)
