"""Tests for RNG plumbing and validation helpers (repro.utils)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_labels,
    check_matrix,
    check_positive,
    check_probability_vector,
    check_vector,
)


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).uniform(size=5)
        b = as_generator(42).uniform(size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        g = as_generator(seq)
        assert isinstance(g, np.random.Generator)


class TestSpawnGenerators:
    def test_children_are_independent_of_each_other(self):
        g1, g2 = spawn_generators(0, 2)
        assert not np.allclose(g1.uniform(size=8), g2.uniform(size=8))

    def test_reproducible_from_int_seed(self):
        a = [g.uniform() for g in spawn_generators(5, 3)]
        b = [g.uniform() for g in spawn_generators(5, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        children = spawn_generators(np.random.default_rng(1), 4)
        assert len(children) == 4

    def test_spawn_from_seed_sequence(self):
        children = spawn_generators(np.random.SeedSequence(1), 2)
        assert len(children) == 2

    def test_zero_children(self):
        assert spawn_generators(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestCheckArray:
    def test_converts_lists(self):
        arr = check_array([[1, 2], [3, 4]])
        assert arr.dtype == np.float64

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_array([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_array([np.inf])

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError):
            check_array([1.0, 2.0], ndim=2)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_array(["a", "b"])


class TestCheckVectorMatrix:
    def test_vector_size_enforced(self):
        with pytest.raises(ValidationError):
            check_vector([1.0, 2.0], size=3)

    def test_matrix_shape_enforced(self):
        with pytest.raises(ValidationError):
            check_matrix(np.ones((2, 3)), rows=3)
        with pytest.raises(ValidationError):
            check_matrix(np.ones((2, 3)), cols=2)

    def test_valid_passthrough(self):
        m = check_matrix(np.ones((2, 3)), rows=2, cols=3)
        assert m.shape == (2, 3)


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        check_probability_vector([0.2, 0.3, 0.5])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_probability_vector([-0.1, 1.1])

    def test_rejects_bad_sum(self):
        with pytest.raises(ValidationError):
            check_probability_vector([0.2, 0.2])


class TestScalarChecks:
    def test_check_positive(self):
        assert check_positive(1.5) == 1.5
        with pytest.raises(ValidationError):
            check_positive(0.0)
        assert check_positive(0.0, strict=False) == 0.0
        with pytest.raises(ValidationError):
            check_positive(-1.0, strict=False)

    def test_check_in_range(self):
        assert check_in_range(0.5, 0, 1) == 0.5
        assert check_in_range(1.0, 0, 1) == 1.0
        with pytest.raises(ValidationError):
            check_in_range(1.0, 0, 1, inclusive=False)
        with pytest.raises(ValidationError):
            check_in_range(2.0, 0, 1)


class TestCheckLabels:
    def test_accepts_ints(self):
        y = check_labels([0, 1, 2], n_classes=3)
        assert y.dtype == np.int64

    def test_accepts_integral_floats(self):
        y = check_labels(np.array([0.0, 1.0]))
        assert y.dtype == np.int64

    def test_rejects_fractional(self):
        with pytest.raises(ValidationError):
            check_labels([0.5, 1.0])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_labels([-1, 0])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            check_labels([0, 3], n_classes=3)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            check_labels(np.zeros((2, 2), dtype=int))
