"""Property suite pinning the batched solve engine to the reference loop.

The engine (:mod:`repro.core.engine`) must be a pure speedup: for every
instance of a stacked solve it has to reproduce the pre-engine
implementation (:func:`reference_solve_all_pairs`) — allclose weights,
intercepts and residuals, and *identical* certificate verdicts — across
randomized shapes, degenerate targets, float32 inputs and rank-deficient
blocks.  Also the regression tests for the two bugfixes shipped with the
engine: the ``n_classes < 2`` zero-pair crash and the empty-round
``worst_relative_residual``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BatchOpenAPIInterpreter,
    OpenAPIInterpreter,
    SolveRound,
    reference_solve_all_pairs,
    run_solve_round,
    run_solve_rounds_batched,
    solve_all_pairs,
    solve_pair_systems_stacked,
)
from repro.exceptions import ValidationError

SWEEP_SEEDS = (0, 1, 2)
#: (n_points, d, C) — overdetermined (n = d + 2) and taller systems,
#: binary through many-class.
SWEEP_SHAPES = ((6, 4, 3), (10, 8, 2), (12, 6, 5), (16, 6, 3))


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = np.exp(logits - logits.max(axis=-1, keepdims=True))
    return z / z.sum(axis=-1, keepdims=True)


def _random_problem(
    rng: np.random.Generator,
    k: int,
    n: int,
    d: int,
    C: int,
    *,
    noise: float = 0.0,
):
    """A stack of ``k`` solve problems with affine (plus noise) log-odds."""
    x0s = rng.normal(size=(k, d))
    samples = x0s[:, None, :] + rng.uniform(-0.5, 0.5, size=(k, n - 1, d))
    points = np.concatenate([x0s[:, None, :], samples], axis=1)
    W = rng.normal(size=(d, C))
    logits = points @ W
    if noise:
        logits = logits + rng.normal(scale=noise, size=logits.shape)
    probs = _softmax(logits)
    classes = rng.integers(0, C, size=k)
    return points, probs, classes, x0s


def _assert_equivalent(engine_solutions, reference_solutions):
    """Engine block == reference solve: same pairs (same order), same
    verdicts, allclose parameters and residuals."""
    assert list(engine_solutions) == list(reference_solutions)
    for pair, ref in reference_solutions.items():
        eng = engine_solutions[pair]
        assert eng.c == ref.c and eng.c_prime == ref.c_prime
        assert eng.certified == ref.certified, pair
        np.testing.assert_allclose(
            eng.result.weights, ref.result.weights, rtol=1e-6, atol=1e-9
        )
        np.testing.assert_allclose(
            eng.result.intercept, ref.result.intercept, rtol=1e-6, atol=1e-9
        )
        np.testing.assert_allclose(
            eng.result.residual_norm,
            ref.result.residual_norm,
            rtol=1e-4,
            atol=1e-8,
        )
        np.testing.assert_allclose(
            eng.result.relative_residual,
            ref.result.relative_residual,
            rtol=1e-4,
            atol=1e-8,
        )
        assert eng.result.rank == ref.result.rank
        assert eng.result.n_equations == ref.result.n_equations
        assert eng.result.n_unknowns == ref.result.n_unknowns


class TestEngineEquivalence:
    """The property pin: engine ≡ reference across randomized problems."""

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    @pytest.mark.parametrize("shape", SWEEP_SHAPES)
    @pytest.mark.parametrize("noise", (0.0, 1e-3))
    def test_randomized_stacks(self, seed, shape, noise):
        n, d, C = shape
        rng = np.random.default_rng(seed)
        points, probs, classes, centers = _random_problem(
            rng, 5, n, d, C, noise=noise
        )
        stacked = solve_pair_systems_stacked(
            points, probs, classes, centers=centers
        )
        for b in range(points.shape[0]):
            reference = reference_solve_all_pairs(
                points[b], probs[b], int(classes[b]), center=centers[b]
            )
            _assert_equivalent(stacked[b], reference)
            # Exact-region problems must actually certify (and noisy ones
            # must not) so the sweep exercises both verdicts.
            certified = all(s.certified for s in reference.values())
            assert certified == (noise == 0.0)

    def test_single_instance_path_equals_stacked(self):
        """solve_all_pairs (k=1 entry) is the same engine."""
        rng = np.random.default_rng(7)
        points, probs, classes, centers = _random_problem(rng, 3, 8, 6, 4)
        stacked = solve_pair_systems_stacked(
            points, probs, classes, centers=centers
        )
        for b in range(3):
            single = solve_all_pairs(
                points[b], probs[b], int(classes[b]), center=centers[b]
            )
            _assert_equivalent(single, stacked[b])

    def test_float32_inputs_upcast(self):
        rng = np.random.default_rng(3)
        points, probs, classes, centers = _random_problem(rng, 4, 7, 5, 3)
        stacked32 = solve_pair_systems_stacked(
            points.astype(np.float32),
            probs.astype(np.float32),
            classes,
            centers=centers.astype(np.float32),
        )
        for b in range(4):
            reference = reference_solve_all_pairs(
                points[b].astype(np.float32).astype(np.float64),
                probs[b].astype(np.float32).astype(np.float64),
                int(classes[b]),
                center=centers[b].astype(np.float32).astype(np.float64),
            )
            _assert_equivalent(stacked32[b], reference)
            for sol in stacked32[b].values():
                assert sol.result.weights.dtype == np.float64

    def test_constant_log_odds_targets(self):
        """Degenerate zero-signal targets: the atol certificate path."""
        rng = np.random.default_rng(5)
        k, n, d, C = 3, 8, 4, 3
        x0s = rng.normal(size=(k, d))
        points = x0s[:, None, :] + rng.uniform(-0.5, 0.5, size=(k, n, d))
        row = rng.dirichlet(np.ones(C))
        probs = np.broadcast_to(row, (k, n, C)).copy()
        classes = np.zeros(k, dtype=int)
        stacked = solve_pair_systems_stacked(
            points, probs, classes, centers=x0s
        )
        for b in range(k):
            reference = reference_solve_all_pairs(
                points[b], probs[b], 0, center=x0s[b]
            )
            _assert_equivalent(stacked[b], reference)
            for sol in stacked[b].values():
                assert sol.certified
                np.testing.assert_allclose(
                    sol.result.weights, 0.0, atol=1e-10
                )

    def test_rank_deficient_blocks_fall_back_to_lstsq(self):
        """Degenerate sample sets must reproduce the lstsq reference
        exactly — rank, minimum-norm solution and failed certificate."""
        rng = np.random.default_rng(9)
        k, n, d, C = 3, 8, 4, 3
        points, probs, classes, centers = _random_problem(rng, k, n, d, C)
        # Block 0: every point identical (offsets rank 0).
        points[0] = centers[0]
        probs[0] = probs[0, 0]
        # Block 1: last feature constant (offsets rank d-1).
        points[1, :, -1] = centers[1, -1]
        stacked = solve_pair_systems_stacked(
            points, probs, classes, centers=centers
        )
        for b in range(k):
            reference = reference_solve_all_pairs(
                points[b], probs[b], int(classes[b]), center=centers[b]
            )
            _assert_equivalent(stacked[b], reference)
        for sol in stacked[0].values():
            assert sol.result.rank == 1
            assert not sol.certified
        for sol in stacked[1].values():
            assert sol.result.rank == d
            assert not sol.certified
        for sol in stacked[2].values():  # healthy block rode along
            assert sol.result.rank == d + 1
            assert sol.certified

    def test_batched_rounds_match_sequential_rounds(self):
        rng = np.random.default_rng(11)
        k, n, d, C = 4, 7, 5, 3
        points, probs, classes, centers = _random_problem(rng, k, n, d, C)
        samples = points[:, 1:, :]
        batched = run_solve_rounds_batched(
            points, probs, samples, classes, centers=centers
        )
        for b in range(k):
            single = run_solve_round(
                points[b], probs[b], samples[b], int(classes[b]),
                center=centers[b],
            )
            assert isinstance(batched[b], SolveRound)
            assert batched[b].target_class == single.target_class
            assert batched[b].certified == single.certified
            _assert_equivalent(batched[b].solutions, single.solutions)

    def test_empty_stack(self):
        assert solve_pair_systems_stacked(
            np.empty((0, 5, 3)), np.empty((0, 5, 2)), np.empty(0, dtype=int)
        ) == []

    def test_validation(self):
        rng = np.random.default_rng(0)
        points, probs, classes, centers = _random_problem(rng, 2, 6, 4, 3)
        with pytest.raises(ValidationError):
            solve_pair_systems_stacked(points[0], probs, classes)
        with pytest.raises(ValidationError):
            solve_pair_systems_stacked(points, probs[:, :4], classes)
        with pytest.raises(ValidationError):
            solve_pair_systems_stacked(points, probs, classes[:1])
        with pytest.raises(ValidationError):
            solve_pair_systems_stacked(points, probs, np.array([0, 3]))
        with pytest.raises(ValidationError):
            solve_pair_systems_stacked(
                points, probs, classes, centers=centers[:, :2]
            )
        with pytest.raises(ValidationError):
            solve_pair_systems_stacked(points, probs, classes, floor=0.0)
        with pytest.raises(ValidationError):
            solve_pair_systems_stacked(
                points[:, :3, :], probs[:, :3, :], classes
            )


class _OneClassAPI:
    """A degenerate service exposing a single class (no pairs exist)."""

    n_features = 3
    n_classes = 1
    query_count = 0

    def predict_proba(self, X):
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return np.ones((X.shape[0], 1))


class TestZeroPairRegression:
    """A single-class API must be rejected with a clear ValidationError,
    not crash with ``ValueError: max() arg is an empty sequence``."""

    def test_interpret_rejects_single_class_api(self):
        with pytest.raises(ValidationError, match="at least 2 classes"):
            OpenAPIInterpreter(seed=0).interpret(
                _OneClassAPI(), np.zeros(3)
            )

    def test_interpret_batch_rejects_single_class_api(self):
        with pytest.raises(ValidationError, match="at least 2 classes"):
            BatchOpenAPIInterpreter(seed=0).interpret_batch(
                _OneClassAPI(), np.zeros((2, 3))
            )

    def test_worst_relative_residual_empty_round(self):
        round_ = SolveRound(
            points=np.zeros((2, 1)),
            probs=np.ones((2, 1)),
            samples=np.zeros((1, 1)),
            target_class=0,
            solutions={},
        )
        assert round_.worst_relative_residual == 0.0
        assert round_.n_pairs == 0
