"""Tests for the affine solver toolkit (repro.utils.linalg)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.utils.linalg import (
    AffineLeastSquaresResult,
    affine_design_matrix,
    consistency_certificate,
    is_full_rank,
    solve_affine_least_squares,
    solve_affine_ridge,
    solve_affine_system,
)


def _affine_data(rng, n, d, scale=1.0):
    """Random affine ground truth plus exact targets."""
    weights = rng.normal(size=d)
    intercept = float(rng.normal())
    points = rng.uniform(-scale, scale, size=(n, d))
    targets = points @ weights + intercept
    return points, targets, weights, intercept


class TestAffineDesignMatrix:
    def test_prepends_ones_column(self):
        pts = np.arange(6, dtype=float).reshape(3, 2)
        A = affine_design_matrix(pts)
        assert A.shape == (3, 3)
        assert np.all(A[:, 0] == 1.0)
        assert np.array_equal(A[:, 1:], pts)

    def test_rejects_non_2d(self):
        with pytest.raises(ValidationError):
            affine_design_matrix(np.ones(3))


class TestSolveAffineLeastSquares:
    def test_exact_recovery_determined(self):
        rng = np.random.default_rng(0)
        pts, t, w, b = _affine_data(rng, 5, 4)
        res = solve_affine_least_squares(pts, t)
        np.testing.assert_allclose(res.weights, w, atol=1e-10)
        assert res.intercept == pytest.approx(b, abs=1e-10)

    def test_exact_recovery_overdetermined(self):
        rng = np.random.default_rng(1)
        pts, t, w, b = _affine_data(rng, 9, 4)
        res = solve_affine_least_squares(pts, t)
        np.testing.assert_allclose(res.weights, w, atol=1e-10)
        assert res.relative_residual < 1e-12

    def test_tiny_neighborhood_stays_conditioned(self):
        """Solving around a far-away center with r=1e-9 must stay exact.

        Targets are built from the offsets directly (``t = U @ w + const``)
        so the *test data* carries no cancellation error; any error in the
        recovered weights is then attributable to the solver.
        """
        rng = np.random.default_rng(2)
        d = 6
        center = rng.uniform(5, 10, size=d)
        w = rng.normal(size=d)
        pts = center + rng.uniform(-1e-9, 1e-9, size=(d + 2, d))
        # Targets must correspond to the representable (rounded) points —
        # exactly what a real API responds to — so build them from the
        # post-rounding offsets.
        const = float(center @ w) + 3.0
        t = (pts - center) @ w + const
        res = solve_affine_least_squares(pts, t, center=center)
        # Float64 targets of magnitude ~10 carry a 1e-9 signal with at best
        # ~1e-6 relative precision (eps * |t| / signal); 1e-4 therefore
        # certifies the solver adds no error of its own.  A naive solve on
        # the raw design [1 | X] fails this completely (cond ~ 1e10).
        np.testing.assert_allclose(res.weights, w, rtol=1e-4)
        # relative_residual is measured against the centered target norm
        # (itself ~1e-9 here) while the absolute residual sits at the
        # lstsq noise floor ~1e-14: the ratio ~1e-5 correctly exceeds the
        # certificate rtol — at this extreme scale float64 cannot certify
        # exactness, and the certificate is deliberately conservative.
        assert res.residual_norm < 1e-12
        assert 1e-9 < res.relative_residual < 1e-3
        # The recovered affine function must reproduce the targets exactly
        # even though the naive design [1 | X] would be singular here.
        np.testing.assert_allclose(pts @ res.weights + res.intercept, t, rtol=1e-12)

    def test_residual_nonzero_for_inconsistent_system(self):
        rng = np.random.default_rng(3)
        pts, t, _, _ = _affine_data(rng, 8, 4)
        t = t.copy()
        t[-1] += 1.0  # break one equation
        res = solve_affine_least_squares(pts, t)
        assert res.relative_residual > 1e-4

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            solve_affine_least_squares(np.ones((5, 3)), np.ones(4))

    def test_underdetermined_rejected(self):
        with pytest.raises(ValidationError):
            solve_affine_least_squares(np.ones((3, 4)), np.ones(3))

    def test_nan_targets_rejected(self):
        pts = np.random.default_rng(4).uniform(size=(5, 3))
        t = np.array([1.0, 2.0, np.nan, 0.0, 1.0])
        with pytest.raises(ValidationError):
            solve_affine_least_squares(pts, t)

    def test_bad_center_shape_rejected(self):
        rng = np.random.default_rng(5)
        pts, t, _, _ = _affine_data(rng, 5, 3)
        with pytest.raises(ValidationError):
            solve_affine_least_squares(pts, t, center=np.zeros(2))

    def test_result_metadata(self):
        rng = np.random.default_rng(6)
        pts, t, _, _ = _affine_data(rng, 7, 4)
        res = solve_affine_least_squares(pts, t)
        assert res.n_equations == 7
        assert res.n_unknowns == 5
        assert res.is_overdetermined
        assert res.rank == 5
        assert res.condition_number >= 1.0
        assert res.as_parameter_vector().shape == (5,)
        assert res.as_parameter_vector()[0] == res.intercept

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        d=st.integers(1, 8),
        extra=st.integers(0, 3),
    )
    def test_property_exact_recovery(self, seed, d, extra):
        """Any consistent affine system is recovered to rounding error."""
        rng = np.random.default_rng(seed)
        pts, t, w, b = _affine_data(rng, d + 1 + extra, d)
        res = solve_affine_least_squares(pts, t)
        np.testing.assert_allclose(res.weights, w, atol=1e-7, rtol=1e-7)
        assert res.intercept == pytest.approx(b, abs=1e-7, rel=1e-7)


class TestSolveAffineSystem:
    def test_requires_exactly_d_plus_one(self):
        rng = np.random.default_rng(7)
        pts, t, _, _ = _affine_data(rng, 6, 4)
        with pytest.raises(ValidationError):
            solve_affine_system(pts, t)

    def test_determined_solve(self):
        rng = np.random.default_rng(8)
        pts, t, w, b = _affine_data(rng, 5, 4)
        res = solve_affine_system(pts, t)
        np.testing.assert_allclose(res.weights, w, atol=1e-9)
        assert not res.is_overdetermined


class TestConsistencyCertificate:
    def test_accepts_consistent(self):
        rng = np.random.default_rng(9)
        pts, t, _, _ = _affine_data(rng, 8, 4)
        res = solve_affine_least_squares(pts, t)
        assert consistency_certificate(res)

    def test_rejects_inconsistent(self):
        rng = np.random.default_rng(10)
        pts, t, _, _ = _affine_data(rng, 8, 4)
        t = t.copy()
        t[0] += 0.5
        res = solve_affine_least_squares(pts, t)
        assert not consistency_certificate(res)

    def test_refuses_determined_systems(self):
        """The naive method's flaw: a square system always 'has a solution'."""
        rng = np.random.default_rng(11)
        pts, t, _, _ = _affine_data(rng, 5, 4)
        res = solve_affine_system(pts, t)
        with pytest.raises(ValidationError):
            consistency_certificate(res)

    def test_rejects_rank_deficient(self):
        # Duplicate points make the design rank-deficient.
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [1.0, 1.0], [1.0, 1.0]])
        t = np.array([0.0, 2.0, 2.0, 2.0])
        res = solve_affine_least_squares(pts, t)
        assert not consistency_certificate(res)

    def test_zero_targets_accepted_via_atol(self):
        rng = np.random.default_rng(12)
        pts = rng.uniform(size=(7, 4))
        res = solve_affine_least_squares(pts, np.zeros(7))
        assert consistency_certificate(res)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), d=st.integers(1, 6))
    def test_property_separates_consistent_from_broken(self, seed, d):
        rng = np.random.default_rng(seed)
        pts, t, _, _ = _affine_data(rng, d + 2, d)
        good = solve_affine_least_squares(pts, t)
        assert consistency_certificate(good)
        t_bad = t.copy()
        t_bad[rng.integers(0, d + 2)] += 1.0 + abs(rng.normal())
        bad = solve_affine_least_squares(pts, t_bad)
        assert not consistency_certificate(bad)


class TestSolveAffineRidge:
    def test_zero_alpha_matches_ols(self):
        rng = np.random.default_rng(13)
        pts, t, w, b = _affine_data(rng, 20, 4)
        weights, intercept = solve_affine_ridge(pts, t, alpha=0.0)
        np.testing.assert_allclose(weights, w, atol=1e-8)
        assert intercept == pytest.approx(b, abs=1e-8)

    def test_large_alpha_shrinks_weights_not_intercept(self):
        """The Ridge-LIME pathology: weights vanish, intercept survives."""
        rng = np.random.default_rng(14)
        pts, t, w, _ = _affine_data(rng, 30, 4, scale=1e-6)
        weights, intercept = solve_affine_ridge(pts, t, alpha=1.0)
        assert np.linalg.norm(weights) < 1e-3 * np.linalg.norm(w)
        assert intercept == pytest.approx(float(t.mean()), abs=1e-3)

    def test_sample_weights_focus_fit(self):
        rng = np.random.default_rng(15)
        pts = rng.uniform(-1, 1, size=(40, 2))
        # Two different affine regimes; weight only the first half.
        t = np.where(pts[:, 0] > 0, pts @ [1.0, 0.0], pts @ [0.0, 5.0])
        sw = (pts[:, 0] > 0).astype(float)
        weights, _ = solve_affine_ridge(pts, t, alpha=1e-8, sample_weight=sw)
        np.testing.assert_allclose(weights, [1.0, 0.0], atol=1e-6)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValidationError):
            solve_affine_ridge(np.ones((3, 2)), np.ones(3), alpha=-1.0)

    def test_zero_weights_rejected(self):
        with pytest.raises(ValidationError):
            solve_affine_ridge(
                np.ones((3, 2)), np.ones(3), sample_weight=np.zeros(3)
            )


class TestIsFullRank:
    def test_identity_full_rank(self):
        assert is_full_rank(np.eye(4))

    def test_duplicate_rows_not_full_rank(self):
        m = np.array([[1.0, 2.0], [1.0, 2.0]])
        assert not is_full_rank(m)

    def test_empty_matrix(self):
        assert not is_full_rank(np.empty((0, 3)))

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            is_full_rank(np.ones(3))
