"""Schema pins: stats dataclasses == their JSON == the docs glossary.

The serving benchmarks emit JSON artifacts built from ``as_dict()``
renderings of :class:`ServiceStats`, :class:`CacheStats`,
:class:`ShardedCacheStats`, :class:`TieredStoreStats` and the benchmark
report/arm dataclasses.  These tests pin four invariants so names
cannot drift apart again:

1. every ``as_dict()`` key set equals the dataclass field set (plus the
   documented derived properties, e.g. ``hit_rate``);
2. every stats key is documented in the ``docs/serving.md`` glossary;
3. the rendered JSON is valid JSON (no NaN/Infinity literals);
4. every ``BENCH_*.json`` artifact schema catalogued in
   ``docs/benchmarks.md`` names exactly the keys its report emits.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys
from dataclasses import fields

import numpy as np
import pytest

from repro.core.engine import EngineBenchReport, EngineBenchRow
from repro.serving import (
    CacheStats,
    GatewayBenchArm,
    GatewayBenchReport,
    GatewayStats,
    IndexScalingRow,
    RegionCache,
    RegionIndexReport,
    ScanScalingRow,
    ServiceMetrics,
    ServiceStats,
    ShardedCacheStats,
    ShardedRegionCache,
    ShardedServingReport,
    ThroughputArm,
    ThroughputReport,
    TieredStoreReport,
    TieredStoreStats,
)

REPO = pathlib.Path(__file__).resolve().parent.parent
DOCS = REPO / "docs" / "serving.md"
BENCH_DOCS = REPO / "docs" / "benchmarks.md"


def field_names(cls) -> set[str]:
    return {f.name for f in fields(cls)}


def sample_cache_stats() -> CacheStats:
    return RegionCache().stats()


def sample_sharded_stats() -> ShardedCacheStats:
    return ShardedRegionCache(n_shards=2).stats()


def sample_service_stats() -> ServiceStats:
    return ServiceMetrics().snapshot()


def sample_broker_stats():
    from repro.api import BrokerStats

    return BrokerStats(
        n_requests=10, n_rows=90, n_round_trips=4, n_coalesced=8,
        max_fused_rows=40, max_fused_requests=5, n_retries=2,
        n_rate_limited=1, n_transient=1, n_exhausted=0,
    )


def sample_arm() -> ThroughputArm:
    return ThroughputArm(
        label="cached", n_requests=4, n_ok=4, elapsed_s=0.1,
        interpretations_per_s=40.0, n_queries=9, round_trips=3,
        hit_rate=0.5, hit_trajectory=(0.0, 0.5), max_gt_l1_error=1e-9,
    )


def sample_tiered_stats() -> TieredStoreStats:
    return TieredStoreStats(
        l1=sample_sharded_stats().as_dict(), l1_hits=3, l2_hits=2,
        l2_misses=1, demotions=4, promotions=2, l2_entries=4,
        l2_live_bytes=1024, l2_total_bytes=1536, l2_dead_ratio=1 / 3,
        l2_segments=1, l2_compactions=1, l2_index_hits=2,
        l2_index_fallbacks=1,
    )


def sample_scan_row() -> ScanScalingRow:
    return ScanScalingRow(
        n_entries=8, n_shards=2, d=4, n_pairs=2,
        monolithic_scan_s=1e-4, per_shard_scan_s=5e-5, ratio=0.5,
    )


def sample_throughput_report() -> ThroughputReport:
    arm = sample_arm()
    return ThroughputReport(
        cached=arm, uncached=arm, speedup=2.0, query_reduction=3.0,
        cache_bitwise_consistent=True, engine_row=None,
        baseline_speedup=4.0,
    )


def sample_sharded_report() -> ShardedServingReport:
    arm = sample_arm()
    return ShardedServingReport(
        unbounded=arm, bounded=arm, multiworker=arm,
        unbounded_cache=sample_cache_stats().as_dict(),
        bounded_cache=sample_sharded_stats().as_dict(),
        unbounded_service=sample_service_stats().as_dict(),
        bounded_service=sample_service_stats().as_dict(),
        n_shards=2, n_workers=2, eviction="lru", bounded_max_entries=4,
        resident_fraction=0.25, hit_rate_ratio=0.95,
        warm_start_hit_rate=0.5, snapshot_entries=3,
        scan=sample_scan_row(), bitwise_consistent=True,
        snapshot_bitwise_consistent=True,
    )


def sample_tiered_report() -> TieredStoreReport:
    arm = sample_arm()
    return TieredStoreReport(
        all_ram=arm, tiered=arm,
        all_ram_service=sample_service_stats().as_dict(),
        tiered_service=sample_service_stats().as_dict(),
        store=sample_tiered_stats().as_dict(),
        n_shards=2, l1_max_entries=4, l1_resident_fraction=0.1,
        hit_retention=1.0, bitwise_consistent=True, churn_requests=120,
        churn_l2_max_bytes=1024, churn_compactions=2,
        churn_max_total_bytes=1800, churn_bytes_bound=2304,
        churn_bounded=True, churn_store=sample_tiered_stats().as_dict(),
    )


def sample_index_row() -> IndexScalingRow:
    return IndexScalingRow(
        n_entries=1000, n_probes=16, linear_scan_s=1e-3,
        indexed_scan_s=1e-4, speedup=10.0, identical_winners=True,
        index_hits=16, index_fallbacks=0,
    )


def sample_region_index_report() -> RegionIndexReport:
    row = sample_index_row()
    return RegionIndexReport(
        d=8, n_pairs=2, index_bits=16, index_shortlist=64,
        rows=(row, row), linear_growth=10.0, indexed_growth=1.5,
        growth_ratio=0.15, max_scale_speedup=10.0,
        identical_winners=True, tiered_requests=120,
        tiered_l1_max_entries=4, tiered_hit_rate_off=0.8,
        tiered_hit_rate_on=0.8, tiered_counts_identical=True,
        tiered_answers_identical=True, tiered_bitwise_consistent=True,
        tiered_store=sample_tiered_stats().as_dict(),
    )


def sample_gateway_stats() -> GatewayStats:
    return GatewayStats(
        n_requests=20, n_ok=19, n_errors=1, n_workers=2, workers_alive=2,
        uptime_s=1.5, requests_per_s=13.3, writer_epoch=3,
        min_worker_epoch=2, max_epoch_lag=1, harvested=6,
        harvest_duplicates=1, l2_records=6, hit_rate=0.7,
        n_shed=2, n_worker_lost=1, n_restarts=1, queue_depth=0,
        queue_depth_peak=3, queue_capacity=64,
        latency_ms_buckets=[1.0, 2.0, 5.0],
        latency_ms_counts=[4, 10, 6, 0],
        latency_p50_ms=2.0, latency_p95_ms=5.0,
        per_worker=[{"worker": 0, "pid": 123, "alive": True}],
    )


def sample_l2_reader_stats() -> dict:
    """A worker tier's meter dict (the ``tier`` payload nested in
    ``GatewayStats.per_worker``)."""
    import tempfile

    from repro.serving import L2ReaderCache

    with tempfile.TemporaryDirectory() as directory:
        reader = L2ReaderCache(directory)
        stats = reader.stats()
        reader.close()
    return stats


def sample_gateway_arm() -> GatewayBenchArm:
    return GatewayBenchArm(
        label="gateway x4", n_workers=4, n_requests=48, n_ok=48,
        elapsed_s=0.5, requests_per_s=96.0, bitwise_identical=True,
        n_mismatches=0, hit_rate=0.8, harvested=10, l2_records=10,
        writer_epoch=2, max_epoch_lag=1, p50_ms=4.0, p95_ms=20.0,
        n_shed=0, n_worker_lost=0, n_restarts=0,
    )


def sample_gateway_report() -> GatewayBenchReport:
    arm = sample_gateway_arm()
    return GatewayBenchReport(
        dataset="blobs", n_requests=48, n_anchors=10, cpu_count=4,
        tiny=True, reference=arm, arms=(arm,), overload=arm,
        rolling_restart=arm, queue_capacity=4, overload_concurrency=8,
        p95_bound_ms=250.0, speedup=2.0,
    )


def sample_engine_report() -> EngineBenchReport:
    row = EngineBenchRow(
        n_instances=4, n_points=8, d=4, C=3, engine_solves_per_s=100.0,
        reference_solves_per_s=25.0, speedup=4.0, max_weight_diff=1e-12,
    )
    return EngineBenchReport(rows=(row,))


def sample_transport_report():
    """The bench_transport report, loaded from the benchmark script (it
    is not an installed module)."""
    spec = importlib.util.spec_from_file_location(
        "bench_transport", REPO / "benchmarks" / "bench_transport.py"
    )
    module = importlib.util.module_from_spec(spec)
    # Register before exec: dataclasses.fields resolves the class's
    # string annotations through sys.modules[cls.__module__].
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    cls = module.TransportBenchReport
    kwargs = {f.name: 0 for f in fields(cls)}
    kwargs["broker_stats"] = sample_broker_stats().as_dict()
    return cls(**kwargs)


def sample_backend_report():
    """The bench_backend report, loaded from the benchmark script (it
    is not an installed module)."""
    spec = importlib.util.spec_from_file_location(
        "bench_backend", REPO / "benchmarks" / "bench_backend.py"
    )
    module = importlib.util.module_from_spec(spec)
    # Register before exec: dataclasses.fields resolves the class's
    # string annotations through sys.modules[cls.__module__].
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    row = module.BackendBenchRow(
        requested="numpy", effective="numpy", n_instances=4, d=4, C=3,
        engine_solves_per_s=100.0, scan_candidates_per_s=1e6,
        engine_speedup_vs_numpy=1.0, scan_speedup_vs_numpy=1.0,
        max_weight_diff=1e-12, certificates_identical=True,
    )
    return module.BackendBenchReport(
        rows=(row,), backends_available=("numpy", "stub"),
        gates_passed=True,
    )


class TestAsDictMatchesFields:
    def test_cache_stats(self):
        payload = sample_cache_stats().as_dict()
        assert set(payload) == field_names(CacheStats) | {"hit_rate"}

    def test_sharded_cache_stats(self):
        payload = sample_sharded_stats().as_dict()
        assert set(payload) == (
            field_names(ShardedCacheStats)
            | {"hit_rate", "per_shard_hit_rate"}
        )

    def test_service_stats(self):
        payload = sample_service_stats().as_dict()
        assert set(payload) == field_names(ServiceStats)

    def test_throughput_arm(self):
        payload = sample_arm().as_dict()
        assert set(payload) == field_names(ThroughputArm)

    def test_gateway_stats(self):
        payload = sample_gateway_stats().as_dict()
        assert set(payload) == field_names(GatewayStats)

    def test_gateway_bench_arm(self):
        payload = sample_gateway_arm().as_dict()
        assert set(payload) == field_names(GatewayBenchArm)

    def test_gateway_bench_report(self):
        payload = sample_gateway_report().as_dict()
        assert set(payload) == field_names(GatewayBenchReport)
        assert set(payload["reference"]) == field_names(GatewayBenchArm)

    def test_throughput_report(self):
        arm = sample_arm()
        report = ThroughputReport(
            cached=arm, uncached=arm, speedup=2.0, query_reduction=3.0,
            cache_bitwise_consistent=True, engine_row=None,
            baseline_speedup=4.0,
        )
        payload = report.as_dict()
        assert set(payload) == {
            "cached", "uncached", "speedup", "query_reduction",
            "cache_bitwise_consistent", "baseline_speedup", "engine",
        }
        json.dumps(payload)

    def test_throughput_report_default_baseline_is_json_safe(self):
        arm = sample_arm()
        report = ThroughputReport(
            cached=arm, uncached=arm, speedup=2.0, query_reduction=3.0,
            cache_bitwise_consistent=True, engine_row=None,
        )
        payload = report.as_dict()
        assert payload["baseline_speedup"] is None
        json.dumps(payload, allow_nan=False)

    def test_broker_stats(self):
        from repro.api import BrokerStats

        payload = sample_broker_stats().as_dict()
        assert set(payload) == (
            field_names(BrokerStats) | {"round_trip_reduction"}
        )
        json.dumps(payload, allow_nan=False)

    def test_scan_scaling_row(self):
        assert set(sample_scan_row().as_dict()) == field_names(ScanScalingRow)

    def test_index_scaling_row(self):
        assert set(sample_index_row().as_dict()) == field_names(
            IndexScalingRow
        )

    def test_region_index_report(self):
        payload = sample_region_index_report().as_dict()
        assert set(payload) == field_names(RegionIndexReport)
        json.dumps(payload, allow_nan=False)

    def test_tiered_store_stats(self):
        payload = sample_tiered_stats().as_dict()
        assert set(payload) == field_names(TieredStoreStats) | {"hit_rate"}
        json.dumps(payload, allow_nan=False)

    def test_tiered_store_report(self):
        payload = sample_tiered_report().as_dict()
        assert set(payload) == field_names(TieredStoreReport)
        json.dumps(payload, allow_nan=False)

    def test_sharded_serving_report(self):
        payload = sample_sharded_report().as_dict()
        assert set(payload) == field_names(ShardedServingReport)
        json.dumps(payload, allow_nan=False)


class TestJsonSafety:
    def test_stats_payloads_are_strict_json(self):
        for payload in (
            sample_cache_stats().as_dict(),
            sample_sharded_stats().as_dict(),
            sample_service_stats().as_dict(),
            sample_arm().as_dict(),
        ):
            text = json.dumps(payload, allow_nan=False)
            json.loads(text)

    def test_sharded_per_shard_lists_are_plain(self):
        payload = sample_sharded_stats().as_dict()
        assert isinstance(payload["per_shard_size"], list)
        assert isinstance(payload["per_shard_hits"], list)
        assert isinstance(payload["per_shard_hit_rate"], list)

    def test_no_numpy_scalars_leak(self):
        stats = ServiceMetrics()
        stats.record_flush(
            queries_spent=int(np.int64(3)), round_trips=1,
            round_trips_sequential=2,
        )
        payload = stats.snapshot().as_dict()
        for value in payload.values():
            assert value is None or isinstance(value, (int, float, str))
        # The backend field is the one legitimate string (an np.str_
        # would also break strict JSON consumers).
        assert type(payload["backend"]) is str


class TestDocsGlossary:
    """Every emitted stats key is documented in docs/serving.md."""

    @pytest.fixture(scope="class")
    def glossary(self) -> str:
        assert DOCS.exists(), "docs/serving.md missing"
        return DOCS.read_text()

    @pytest.mark.parametrize(
        "payload_factory",
        [
            sample_service_stats,
            sample_cache_stats,
            sample_sharded_stats,
            sample_broker_stats,
            sample_tiered_stats,
            sample_gateway_stats,
        ],
        ids=[
            "service", "cache", "sharded-cache", "broker", "tiered-store",
            "gateway",
        ],
    )
    def test_keys_documented(self, glossary, payload_factory):
        missing = [
            key
            for key in payload_factory().as_dict()
            if f"`{key}`" not in glossary
        ]
        assert not missing, f"undocumented stats keys: {missing}"

    def test_l2_reader_tier_keys_documented(self, glossary):
        missing = [
            key
            for key in sample_l2_reader_stats()
            if f"`{key}`" not in glossary
        ]
        assert not missing, f"undocumented reader-tier keys: {missing}"


class TestBenchmarkCatalogSchemas:
    """Every ``BENCH_*.json`` schema table in ``docs/benchmarks.md``
    names exactly the keys the corresponding report emits — the catalog
    cannot drift from the code."""

    @pytest.fixture(scope="class")
    def catalog(self) -> str:
        assert BENCH_DOCS.exists(), "docs/benchmarks.md missing"
        return BENCH_DOCS.read_text()

    def _section(self, catalog: str, artifact: str) -> str:
        """The catalog text from the heading naming ``artifact`` to the
        next heading of the same or higher level."""
        lines = catalog.splitlines()
        start = next(
            (
                i
                for i, line in enumerate(lines)
                if line.startswith("#") and artifact in line
            ),
            None,
        )
        assert start is not None, f"no catalog section for {artifact}"
        level = len(lines[start]) - len(lines[start].lstrip("#"))
        for end in range(start + 1, len(lines)):
            line = lines[end]
            if line.startswith("#"):
                if len(line) - len(line.lstrip("#")) <= level:
                    break
        else:
            end = len(lines)
        return "\n".join(lines[start:end])

    @pytest.mark.parametrize(
        "artifact, payload_factory",
        [
            ("BENCH_serving.json", sample_throughput_report),
            ("BENCH_sharded_serving.json", sample_sharded_report),
            ("BENCH_tiered_store.json", sample_tiered_report),
            ("BENCH_transport.json", sample_transport_report),
            ("BENCH_solve_engine.json", sample_engine_report),
            ("BENCH_region_index.json", sample_region_index_report),
            ("BENCH_backend.json", sample_backend_report),
            ("BENCH_gateway.json", sample_gateway_report),
        ],
        ids=[
            "serving", "sharded", "tiered-store", "transport", "engine",
            "region-index", "backend", "gateway",
        ],
    )
    def test_artifact_keys_catalogued(
        self, catalog, artifact, payload_factory
    ):
        section = self._section(catalog, artifact)
        payload = payload_factory().as_dict()
        keys = set(payload)
        if payload.get("rows"):  # per-row schemas nest under "rows"
            keys |= set(payload["rows"][0])
        # Gateway arms nest under their own keys; pin their schemas too.
        for nested in ("reference", "overload", "rolling_restart"):
            if isinstance(payload.get(nested), dict):
                keys |= set(payload[nested])
        missing = [key for key in keys if f"`{key}`" not in section]
        assert not missing, (
            f"{artifact}: keys missing from its docs/benchmarks.md "
            f"schema table: {missing}"
        )

    def test_every_benchmark_script_catalogued(self, catalog):
        scripts = sorted(
            p.name for p in (REPO / "benchmarks").glob("bench_*.py")
        )
        missing = [name for name in scripts if f"`{name}`" not in catalog]
        assert not missing, (
            f"benchmark scripts missing from docs/benchmarks.md: {missing}"
        )
