"""Schema pins: stats dataclasses == their JSON == the docs glossary.

The serving benchmarks emit JSON artifacts built from ``as_dict()``
renderings of :class:`ServiceStats`, :class:`CacheStats`,
:class:`ShardedCacheStats` and the benchmark report/arm dataclasses.
These tests pin three invariants so names cannot drift apart again:

1. every ``as_dict()`` key set equals the dataclass field set (plus the
   documented derived properties, e.g. ``hit_rate``);
2. every stats key is documented in the ``docs/serving.md`` glossary;
3. the rendered JSON is valid JSON (no NaN/Infinity literals).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import fields

import numpy as np
import pytest

from repro.serving import (
    CacheStats,
    RegionCache,
    ScanScalingRow,
    ServiceMetrics,
    ServiceStats,
    ShardedCacheStats,
    ShardedRegionCache,
    ThroughputArm,
    ThroughputReport,
)

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs" / "serving.md"


def field_names(cls) -> set[str]:
    return {f.name for f in fields(cls)}


def sample_cache_stats() -> CacheStats:
    return RegionCache().stats()


def sample_sharded_stats() -> ShardedCacheStats:
    return ShardedRegionCache(n_shards=2).stats()


def sample_service_stats() -> ServiceStats:
    return ServiceMetrics().snapshot()


def sample_broker_stats():
    from repro.api import BrokerStats

    return BrokerStats(
        n_requests=10, n_rows=90, n_round_trips=4, n_coalesced=8,
        max_fused_rows=40, max_fused_requests=5, n_retries=2,
        n_rate_limited=1, n_transient=1, n_exhausted=0,
    )


def sample_arm() -> ThroughputArm:
    return ThroughputArm(
        label="cached", n_requests=4, n_ok=4, elapsed_s=0.1,
        interpretations_per_s=40.0, n_queries=9, round_trips=3,
        hit_rate=0.5, hit_trajectory=(0.0, 0.5), max_gt_l1_error=1e-9,
    )


class TestAsDictMatchesFields:
    def test_cache_stats(self):
        payload = sample_cache_stats().as_dict()
        assert set(payload) == field_names(CacheStats) | {"hit_rate"}

    def test_sharded_cache_stats(self):
        payload = sample_sharded_stats().as_dict()
        assert set(payload) == (
            field_names(ShardedCacheStats)
            | {"hit_rate", "per_shard_hit_rate"}
        )

    def test_service_stats(self):
        payload = sample_service_stats().as_dict()
        assert set(payload) == field_names(ServiceStats)

    def test_throughput_arm(self):
        payload = sample_arm().as_dict()
        assert set(payload) == field_names(ThroughputArm)

    def test_throughput_report(self):
        arm = sample_arm()
        report = ThroughputReport(
            cached=arm, uncached=arm, speedup=2.0, query_reduction=3.0,
            cache_bitwise_consistent=True, engine_row=None,
            baseline_speedup=4.0,
        )
        payload = report.as_dict()
        assert set(payload) == {
            "cached", "uncached", "speedup", "query_reduction",
            "cache_bitwise_consistent", "baseline_speedup", "engine",
        }
        json.dumps(payload)

    def test_throughput_report_default_baseline_is_json_safe(self):
        arm = sample_arm()
        report = ThroughputReport(
            cached=arm, uncached=arm, speedup=2.0, query_reduction=3.0,
            cache_bitwise_consistent=True, engine_row=None,
        )
        payload = report.as_dict()
        assert payload["baseline_speedup"] is None
        json.dumps(payload, allow_nan=False)

    def test_broker_stats(self):
        from repro.api import BrokerStats

        payload = sample_broker_stats().as_dict()
        assert set(payload) == (
            field_names(BrokerStats) | {"round_trip_reduction"}
        )
        json.dumps(payload, allow_nan=False)

    def test_scan_scaling_row(self):
        row = ScanScalingRow(
            n_entries=8, n_shards=2, d=4, n_pairs=2,
            monolithic_scan_s=1e-4, per_shard_scan_s=5e-5, ratio=0.5,
        )
        assert set(row.as_dict()) == field_names(ScanScalingRow)


class TestJsonSafety:
    def test_stats_payloads_are_strict_json(self):
        for payload in (
            sample_cache_stats().as_dict(),
            sample_sharded_stats().as_dict(),
            sample_service_stats().as_dict(),
            sample_arm().as_dict(),
        ):
            text = json.dumps(payload, allow_nan=False)
            json.loads(text)

    def test_sharded_per_shard_lists_are_plain(self):
        payload = sample_sharded_stats().as_dict()
        assert isinstance(payload["per_shard_size"], list)
        assert isinstance(payload["per_shard_hits"], list)
        assert isinstance(payload["per_shard_hit_rate"], list)

    def test_no_numpy_scalars_leak(self):
        stats = ServiceMetrics()
        stats.record_flush(
            queries_spent=int(np.int64(3)), round_trips=1,
            round_trips_sequential=2,
        )
        payload = stats.snapshot().as_dict()
        for value in payload.values():
            assert value is None or isinstance(value, (int, float))


class TestDocsGlossary:
    """Every emitted stats key is documented in docs/serving.md."""

    @pytest.fixture(scope="class")
    def glossary(self) -> str:
        assert DOCS.exists(), "docs/serving.md missing"
        return DOCS.read_text()

    @pytest.mark.parametrize(
        "payload_factory",
        [
            sample_service_stats,
            sample_cache_stats,
            sample_sharded_stats,
            sample_broker_stats,
        ],
        ids=["service", "cache", "sharded-cache", "broker"],
    )
    def test_keys_documented(self, glossary, payload_factory):
        missing = [
            key
            for key in payload_factory().as_dict()
            if f"`{key}`" not in glossary
        ]
        assert not missing, f"undocumented stats keys: {missing}"
