"""Tests for region geometry, SmoothGrad, and active extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SmoothGrad
from repro.exceptions import ValidationError
from repro.extraction import ActiveRegionExplorer, RegionExplorer
from repro.models.regions import (
    count_regions_on_segment,
    region_radius,
    region_statistics,
)


class TestRegionRadius:
    def test_linear_model_has_unbounded_region(self, linear_model, blobs3):
        radius = region_radius(linear_model, blobs3.X[0], max_radius=5.0, seed=0)
        assert radius == 5.0  # single region: never finds a boundary

    def test_plnn_radius_finite_and_positive(self, relu_model, blobs3):
        radius = region_radius(relu_model, blobs3.X[0], seed=0)
        assert 0.0 < radius <= 2.0

    def test_radius_is_safe(self, relu_model, blobs3):
        """Perturbations strictly inside the radius keep the region id
        (along the tested directions — spot check with fresh ones)."""
        x = blobs3.X[0]
        radius = region_radius(relu_model, x, n_directions=16, seed=0)
        home = relu_model.region_id(x)
        rng = np.random.default_rng(1)
        stays = 0
        for _ in range(20):
            direction = rng.normal(size=x.shape)
            direction /= np.linalg.norm(direction)
            if relu_model.region_id(x + 0.5 * radius * direction) == home:
                stays += 1
        # The radius is a min over sampled directions, not exact; most
        # fresh directions at half the radius must stay inside.
        assert stays >= 16

    def test_lmt_radius_larger_than_plnn(self, lmt_model, relu_model, blobs3, xor_dataset):
        """The Figure 5 geometry: LMT cells are much larger than PLNN cells."""
        lmt_r = np.median([
            region_radius(lmt_model, x, seed=0) for x in xor_dataset.X[:10]
        ])
        plnn_r = np.median([
            region_radius(relu_model, x, seed=0) for x in blobs3.X[:10]
        ])
        assert lmt_r > plnn_r

    def test_validations(self, relu_model, blobs3):
        with pytest.raises(ValidationError):
            region_radius(relu_model, blobs3.X[0], n_directions=0)
        with pytest.raises(ValidationError):
            region_radius(relu_model, blobs3.X[0], max_radius=0.0)


class TestCountRegionsOnSegment:
    def test_single_region_for_linear(self, linear_model, blobs3):
        assert count_regions_on_segment(
            linear_model, blobs3.X[0], blobs3.X[1]
        ) == 1

    def test_plnn_crosses_regions(self, relu_model, blobs3):
        # Two far-apart instances of different classes: the line between
        # them must cross boundaries.
        a = blobs3.X[blobs3.y == 0][0]
        b = blobs3.X[blobs3.y == 1][0]
        assert count_regions_on_segment(relu_model, a, b) > 1

    def test_degenerate_segment(self, relu_model, blobs3):
        x = blobs3.X[0]
        assert count_regions_on_segment(relu_model, x, x) == 1

    def test_monotone_in_resolution(self, relu_model, blobs3):
        a, b = blobs3.X[0], blobs3.X[1]
        coarse = count_regions_on_segment(relu_model, a, b, n_steps=16)
        fine = count_regions_on_segment(relu_model, a, b, n_steps=512)
        assert fine >= coarse

    def test_validations(self, relu_model, blobs3):
        with pytest.raises(ValidationError):
            count_regions_on_segment(relu_model, blobs3.X[0], np.ones(3))
        with pytest.raises(ValidationError):
            count_regions_on_segment(
                relu_model, blobs3.X[0], blobs3.X[1], n_steps=0
            )


class TestRegionStatistics:
    def test_summary_fields(self, relu_model, blobs3):
        stats = region_statistics(relu_model, blobs3.X[:8], seed=0)
        assert stats.radii.shape == (8,)
        assert stats.min_radius <= stats.median_radius <= stats.max_radius
        assert 1 <= stats.n_distinct_regions <= 8

    def test_empty_rejected(self, relu_model):
        with pytest.raises(ValidationError):
            region_statistics(relu_model, np.empty((0, 6)))


class TestSmoothGrad:
    def test_basic_attribution(self, relu_model, blobs3):
        att = SmoothGrad(relu_model, seed=0).explain(blobs3.X[0])
        assert att.values.shape == (6,)
        assert att.method == "smoothgrad"
        assert att.samples.shape == (25, 6)

    def test_linear_model_recovers_gradient(self, linear_model, blobs3):
        """One region: the average of identical gradients is the gradient."""
        att = SmoothGrad(linear_model, n_samples=10, seed=0).explain(
            blobs3.X[0], c=1
        )
        np.testing.assert_allclose(att.values, linear_model.weights[:, 1])

    def test_magnitude_variant_nonnegative(self, relu_model, blobs3):
        att = SmoothGrad(relu_model, magnitude=True, seed=0).explain(blobs3.X[0])
        assert np.all(att.values >= 0)

    def test_smoothing_mixes_regions(self, relu_model, blobs3):
        """With large noise the attribution differs from the local
        gradient — the inexactness OpenAPI avoids."""
        x0 = blobs3.X[0]
        c = int(relu_model.predict(x0)[0])
        local_grad = relu_model.input_gradient(x0, c)
        att = SmoothGrad(
            relu_model, n_samples=50, noise_scale=1.0, seed=0
        ).explain(x0, c=c)
        assert not np.allclose(att.values, local_grad, atol=1e-6)

    def test_validations(self, relu_model):
        with pytest.raises(ValidationError):
            SmoothGrad(relu_model, n_samples=0)
        with pytest.raises(ValidationError):
            SmoothGrad(relu_model, noise_scale=0.0)
        with pytest.raises(ValidationError):
            SmoothGrad(relu_model, of="banana")


class TestActiveRegionExplorer:
    def test_discovers_regions(self, relu_api):
        active = ActiveRegionExplorer(relu_api, seed=0)
        active.explore(20)
        assert active.n_regions >= 1
        assert len(active.records) == active.n_regions

    def test_fidelity_at_equal_budget(self, relu_api, blobs3):
        """The documented trade-off: boundary-seeking may find fewer
        regions than random probing but must keep surrogate label
        fidelity competitive at equal budget (its anchors sit where
        routing errors happen)."""
        from repro.extraction import PiecewiseSurrogate, fidelity_report

        budget = 40
        active = ActiveRegionExplorer(relu_api, exploit_fraction=0.5, seed=1)
        active.explore(budget)
        random_explorer = RegionExplorer(relu_api, seed=1)
        random_explorer.explore_random(budget)

        eval_X = blobs3.X[200:]
        fid_active = fidelity_report(
            PiecewiseSurrogate(active.records), relu_api, eval_X
        )
        fid_random = fidelity_report(
            PiecewiseSurrogate(random_explorer.records), relu_api, eval_X
        )
        assert fid_active.label_agreement >= fid_random.label_agreement - 0.02

    def test_pure_random_mode(self, relu_api):
        active = ActiveRegionExplorer(relu_api, exploit_fraction=0.0, seed=2)
        active.explore(5)
        assert active.n_regions >= 1

    def test_validations(self, relu_api):
        with pytest.raises(ValidationError):
            ActiveRegionExplorer(relu_api, exploit_fraction=1.5)
        with pytest.raises(ValidationError):
            ActiveRegionExplorer(relu_api, box=(1.0, 0.0))
        active = ActiveRegionExplorer(relu_api, seed=0)
        with pytest.raises(ValidationError):
            active.explore(0)
