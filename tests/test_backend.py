"""Unit tests for the array-backend seam: resolution, fallback, coercion.

The adapter-contract and cross-backend equivalence tests live in
``tests/test_backend_conformance.py``; this module covers the seam's
plumbing — :func:`resolve_backend` semantics, the warn-once numpy
fallback for absent accelerators, the ``as_float64`` entry coercion
(including the float32-upcast property across engine / cache / store
entry points), and the CLI's choice-list pin.
"""

from __future__ import annotations

import os
import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import _BACKEND_CHOICES
from repro.core import OpenAPIInterpreter
from repro.core.backend import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    ArrayBackend,
    NumpyBackend,
    StubBackend,
    as_float64,
    available_backends,
    backend_available,
    pack_sign_bits,
    resolve_backend,
    reset_backend_state,
)
from repro.core.engine import solve_pair_systems_stacked, _bench_problem
from repro.exceptions import ValidationError
from repro.serving import InterpretationService, RegionCache
from repro.serving.store import TieredRegionStore


@pytest.fixture()
def clean_backend_state():
    """Run with (and leave behind) pristine singleton/warning state."""
    reset_backend_state()
    yield
    reset_backend_state()


class TestAsFloat64:
    def test_float64_passes_through_without_copy(self):
        a = np.arange(6, dtype=np.float64)
        assert as_float64(a) is a

    def test_list_and_float32_coerce(self):
        assert as_float64([1, 2]).dtype == np.float64
        assert as_float64(np.ones(3, dtype=np.float32)).dtype == np.float64

    @given(
        st.lists(
            st.floats(
                allow_nan=False, allow_infinity=False, width=32,
                min_value=-1e6, max_value=1e6,
            ),
            min_size=1, max_size=32,
        )
    )
    def test_float32_upcast_is_lossless(self, values):
        """Upcasting float32 input is exact: coercing at the seam gives
        bitwise the same array as the caller upcasting beforehand."""
        x32 = np.asarray(values, dtype=np.float32)
        seam = as_float64(x32)
        assert seam.dtype == np.float64
        assert np.array_equal(seam, x32.astype(np.float64))


class TestPackSignBits:
    def test_known_codes(self):
        signs = np.array([[True, False, True], [False, False, False]])
        codes = pack_sign_bits(signs)
        assert codes.dtype == np.uint64
        assert codes.tolist() == [0b101, 0]

    def test_bit_64_boundary(self):
        signs = np.zeros(64, dtype=bool)
        signs[63] = True
        assert int(pack_sign_bits(signs)) == 1 << 63


class TestResolveBackend:
    def test_instance_passes_through(self):
        be = NumpyBackend()
        assert resolve_backend(be) is be

    def test_names_resolve_to_singletons(self, clean_backend_state):
        assert resolve_backend("numpy") is resolve_backend("numpy")
        assert resolve_backend("stub") is resolve_backend("stub")
        assert isinstance(resolve_backend("stub"), StubBackend)

    def test_name_is_normalized(self, clean_backend_state):
        assert resolve_backend("  NumPy ") is resolve_backend("numpy")

    def test_none_reads_environment(self, clean_backend_state, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "stub")
        assert resolve_backend(None).name == "stub"
        monkeypatch.delenv(BACKEND_ENV_VAR)
        assert resolve_backend(None).name == "numpy"

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError, match="unknown array backend"):
            resolve_backend("jax")

    def test_availability_predicates(self):
        assert backend_available("numpy")
        assert backend_available("stub")
        assert not backend_available("not-a-backend")
        names = available_backends()
        assert names[:2] == ["numpy", "stub"]
        for name in names:
            assert isinstance(resolve_backend(name), ArrayBackend)


@pytest.mark.parametrize(
    "name",
    [
        pytest.param(
            "cupy",
            marks=pytest.mark.skipif(
                backend_available("cupy"), reason="cupy installed"
            ),
        ),
        pytest.param(
            "torch",
            marks=pytest.mark.skipif(
                backend_available("torch"), reason="torch installed"
            ),
        ),
    ],
)
class TestMissingBackendFallback:
    def test_warns_exactly_once_then_serves_numpy(
        self, name, clean_backend_state
    ):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = resolve_backend(name)
        assert first.name == "numpy"
        assert len(caught) == 1
        assert issubclass(caught[0].category, RuntimeWarning)
        assert "falling back to numpy" in str(caught[0].message)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            second = resolve_backend(name)
        assert second is first
        assert caught == []

    def test_effective_name_surfaces_in_service_stats(
        self, name, clean_backend_state, relu_api
    ):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            service = InterpretationService(relu_api, backend=name)
        with service:
            payload = service.stats().as_dict()
        assert payload["backend"] == "numpy"


class TestCliChoicePin:
    def test_cli_choices_mirror_backend_names(self):
        """``cli._BACKEND_CHOICES`` is a literal (kept import-light);
        this pin keeps it synchronized with the seam's registry."""
        assert _BACKEND_CHOICES == BACKEND_NAMES


class TestFloat32UpcastEquivalence:
    """Entering any hot layer with float32 gives the float64 answer."""

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_engine_entry(self, seed):
        points, probs, classes, centers = _bench_problem(3, 6, 4, 3, seed)
        p32 = points.astype(np.float32)
        q32 = probs.astype(np.float32)
        c32 = centers.astype(np.float32)
        # float32 inputs are not the same real numbers as the float64
        # originals, so the oracle is the caller upcasting beforehand:
        # the seam's coercion must be equivalent to that, bitwise.
        out32 = solve_pair_systems_stacked(p32, q32, classes, centers=c32)
        ref = solve_pair_systems_stacked(
            p32.astype(np.float64),
            q32.astype(np.float64),
            classes,
            centers=c32.astype(np.float64),
        )
        for eng, exp in zip(out32, ref):
            assert eng.keys() == exp.keys()
            for pair in exp:
                assert np.array_equal(
                    eng[pair].result.weights, exp[pair].result.weights
                )
                assert eng[pair].certified == exp[pair].certified

    def test_cache_entry(self, relu_api, blobs3):
        x0 = blobs3.X[0]
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, x0)
        cache = RegionCache()
        assert cache.insert(interp)
        y0 = relu_api.predict_proba(x0)
        x32 = x0.astype(np.float32)
        y32 = y0.astype(np.float32)
        hit32 = cache.lookup(x32, y32, interp.target_class)
        ref = cache.lookup(
            x32.astype(np.float64), y32.astype(np.float64),
            interp.target_class,
        )
        assert hit32 is not None and ref is not None
        assert np.array_equal(hit32.decision_features, ref.decision_features)

    def test_store_entry(self, relu_api, blobs3, tmp_path):
        x0 = blobs3.X[0]
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, x0)
        store = TieredRegionStore(directory=tmp_path / "l2", fsync=False)
        assert store.insert(interp)
        y0 = relu_api.predict_proba(x0)
        x32 = x0.astype(np.float32)
        y32 = y0.astype(np.float32)
        hit32 = store.lookup(x32, y32, interp.target_class)
        ref = store.lookup(
            x32.astype(np.float64), y32.astype(np.float64),
            interp.target_class,
        )
        assert hit32 is not None and ref is not None
        assert np.array_equal(hit32.decision_features, ref.decision_features)


class TestWorkerProcessResolution:
    """resolve_backend re-resolves per process (the gateway worker seam).

    The resolution singletons are process-wide state; a forked worker
    inherits the parent's instances, which is a latent bug for
    device-holding backends (a CUDA context does not survive fork).
    Resolution must notice the pid change and rebuild, and a spawned
    worker must honor its own ``REPRO_BACKEND`` environment.
    """

    def test_pid_change_discards_inherited_singletons(self, monkeypatch):
        import repro.core.backend as backend_mod

        reset_backend_state()
        parent = resolve_backend("numpy")
        assert resolve_backend("numpy") is parent
        # Simulate being a forked child: same module state, new pid.
        monkeypatch.setattr(backend_mod, "_owner_pid", -1)
        child = resolve_backend("numpy")
        assert child is not parent
        # And the rebuilt state is again a stable singleton.
        assert resolve_backend("numpy") is child

    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="fork is POSIX-only"
    )
    def test_forked_child_rebuilds_its_singleton(self):
        import repro.core.backend as backend_mod

        reset_backend_state()
        parent_instance = resolve_backend("stub")
        pid = os.fork()
        if pid == 0:
            # Child: hold a strong reference to the inherited singleton
            # so an address cannot be recycled, then re-resolve.
            status = 1
            try:
                inherited = backend_mod._instances.get("stub")
                fresh = resolve_backend("stub")
                if inherited is parent_instance and fresh is not inherited:
                    status = 0
            finally:
                os._exit(status)
        _, wait_status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(wait_status) == 0

    def test_spawned_process_honors_backend_env(self, tmp_path):
        # A genuinely fresh interpreter (the spawn start-method case):
        # REPRO_BACKEND must drive the default, and the stub's tag
        # discipline must hold inside that process.
        script = (
            "from repro.core.backend import resolve_backend\n"
            "from repro.exceptions import ValidationError\n"
            "import numpy as np\n"
            "be = resolve_backend(None)\n"
            "assert be.name == 'stub', be.name\n"
            "tagged = be.asarray(np.eye(2))\n"
            "try:\n"
            "    be.matmul(np.eye(2), np.eye(2))\n"
            "except ValidationError:\n"
            "    pass\n"
            "else:\n"
            "    raise SystemExit('untagged operand not rejected')\n"
            "out = be.to_host(be.matmul(tagged, tagged))\n"
            "assert np.array_equal(out, np.eye(2))\n"
            "print('SPAWN_OK')\n"
        )
        env = dict(os.environ)
        env[BACKEND_ENV_VAR] = "stub"
        src_root = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=60, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "SPAWN_OK" in proc.stdout
