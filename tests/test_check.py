"""Tests for the reproduction self-check scorecard (repro.eval.check)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.eval.check import CheckItem, run_reproduction_check
from repro.eval.config import ExperimentConfig


@pytest.fixture(scope="module")
def scorecard():
    return run_reproduction_check(seed=0)


class TestScorecard:
    def test_all_claims_pass(self, scorecard):
        failed = [item for item in scorecard if not item.passed]
        assert not failed, "\n".join(str(item) for item in failed)

    def test_covers_the_headline_claims(self, scorecard):
        names = " ".join(item.name for item in scorecard)
        assert "Table I" in names
        assert "exact" in names
        assert "Theorem 1" in names
        assert "Ridge-LIME" in names
        assert "certificate" in names
        assert "verify" in names

    def test_items_carry_details(self, scorecard):
        for item in scorecard:
            assert isinstance(item, CheckItem)
            assert item.detail

    def test_custom_config(self):
        cfg = ExperimentConfig.test_scale().scaled(
            datasets=("synthetic-fashion",), n_interpret=2
        )
        items = run_reproduction_check(cfg, seed=1)
        assert all(item.passed for item in items)


class TestCheckCLI:
    def test_check_command(self, capsys):
        code = main(["check", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "checks passed" in out
        assert "[PASS]" in out
