"""Backend conformance suite: every importable backend, one contract.

Three layers of pinning, from adapter to end-to-end:

* **Adapter contracts** — each :class:`ArrayBackend` method satisfies
  the numpy semantics the hot layers rely on (transfer round-trip,
  batched solve/eigvalsh, rank-revealing lstsq, gather, argpartition's
  partial-order guarantee), parameterized over
  :func:`available_backends` so a GPU host automatically extends the
  matrix to cupy/torch.
* **Engine gates** — the acceptance rule accelerated backends must
  meet: weights agree with the pre-engine reference loop to
  :data:`MAX_ENGINE_WEIGHT_DIFF` and the consistency-certificate
  verdicts are *identical* (the certificate is the cross-backend
  exactness oracle).  The stub backend is additionally held to full
  bitwise equality with numpy — it computes with the same calls.
* **Paired equivalence** — the numpy backend's composed kernels are
  pinned bitwise against the inline pre-seam numpy expressions they
  replaced, so the refactor provably did not change the numpy path; the
  serving tiers are then pinned stub-vs-numpy end-to-end (cache, store,
  index), which exercises the seam discipline on the real call graph.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OpenAPIInterpreter
from repro.core.backend import (
    NumpyBackend,
    StubBackend,
    available_backends,
    pack_sign_bits,
    resolve_backend,
)
from repro.core.engine import (
    MAX_ENGINE_WEIGHT_DIFF,
    _bench_problem,
    reference_solve_all_pairs,
    solve_pair_systems_stacked,
)
from repro.exceptions import ValidationError
from repro.serving import RegionCache
from repro.serving.index import RegionSignIndex, hyperplane_bank
from repro.serving.store import TieredRegionStore

BACKENDS = available_backends()


@pytest.fixture(params=BACKENDS)
def be(request):
    return resolve_backend(request.param)


def _exact(be) -> bool:
    """Whether this backend promises bitwise numpy results."""
    return be.name in ("numpy", "stub")


def _assert_matches(be, got_host: np.ndarray, expected: np.ndarray):
    if _exact(be):
        assert np.array_equal(got_host, expected)
    else:
        np.testing.assert_allclose(got_host, expected, rtol=1e-10, atol=1e-12)


class TestAdapterContracts:
    def test_transfer_round_trip(self, be):
        x = np.random.default_rng(0).normal(size=(4, 3))
        assert np.array_equal(be.to_host(be.asarray(x)), x)

    def test_matmul_and_transposes(self, be):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(5, 3, 4))
        b = rng.normal(size=(5, 4, 2))
        got = be.to_host(be.matmul(be.asarray(a), be.asarray(b)))
        _assert_matches(be, got, np.matmul(a, b))
        got_bT = be.to_host(be.bT(be.asarray(a)))
        assert np.array_equal(got_bT, np.swapaxes(a, -1, -2))
        m = rng.normal(size=(6, 3))
        got_bT2 = be.to_host(be.bT2(be.asarray(m)))
        assert np.array_equal(got_bT2, m.T)

    def test_einsum(self, be):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(4, 3, 5))
        b = rng.normal(size=(4, 5))
        got = be.to_host(
            be.einsum("bij,bj->bi", be.asarray(a), be.asarray(b))
        )
        _assert_matches(be, got, np.einsum("bij,bj->bi", a, b))

    def test_batched_solve(self, be):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(6, 4, 4)) + 4.0 * np.eye(4)
        rhs = rng.normal(size=(6, 4, 1))
        got = be.to_host(be.solve(be.asarray(a), be.asarray(rhs)))
        _assert_matches(be, got, np.linalg.solve(a, rhs))

    def test_solve_raises_backend_linalg_error(self, be):
        singular = np.zeros((2, 3, 3))
        with pytest.raises(be.linalg_error):
            be.to_host(
                be.solve(
                    be.asarray(singular), be.asarray(np.ones((2, 3, 1)))
                )
            )

    def test_batched_eigvalsh_ascending(self, be):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(5, 4, 4))
        sym = a @ np.swapaxes(a, -1, -2)
        got = be.to_host(be.eigvalsh(be.asarray(sym)))
        _assert_matches(be, got, np.linalg.eigvalsh(sym))
        assert (np.diff(got, axis=-1) >= -1e-12).all()

    def test_lstsq_rank_revealing(self, be):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(8, 3))
        a = np.hstack([a, a[:, :1]])  # rank 3 out of 4 columns
        rhs = rng.normal(size=8)
        solution, rank, sv = be.lstsq(be.asarray(a), be.asarray(rhs))
        assert isinstance(rank, int) and rank == 3
        assert isinstance(sv, np.ndarray) and sv.dtype == np.float64
        ref, _, ref_rank, ref_sv = np.linalg.lstsq(a, rhs, rcond=None)
        assert ref_rank == 3
        _assert_matches(be, be.to_host(solution), ref)
        np.testing.assert_allclose(sv, ref_sv, rtol=1e-10)

    def test_take_gathers_rows(self, be):
        a = np.arange(24, dtype=np.float64).reshape(6, 4)
        idx = np.array([4, 0, 2])
        got = be.to_host(be.take(be.asarray(a), idx))
        assert np.array_equal(got, a[idx])

    def test_argpartition_contract(self, be):
        rng = np.random.default_rng(6)
        a = rng.permutation(64).astype(np.float64)
        kth = 7
        order = be.to_host(be.argpartition(be.asarray(a), kth))
        head = set(a[order[: kth + 1]].tolist())
        assert head == set(np.sort(a)[: kth + 1].tolist())


class TestComposedKernels:
    """Composed kernels vs the inline numpy expressions they replaced."""

    def _stacks(self, m=9, P=4, d=5, seed=7):
        rng = np.random.default_rng(seed)
        return (
            rng.normal(size=(m, P, d)),
            rng.normal(size=(m, P)),
            rng.normal(size=(m, d)),
            rng.normal(size=d),
            rng.normal(size=P),
        )

    def test_affine_claims(self, be):
        W, b, _, x0, _ = self._stacks()
        m, P, d = W.shape
        got = be.to_host(
            be.affine_claims(be.asarray(W), be.asarray(b), be.asarray(x0))
        )
        expected = (W.reshape(m * P, d) @ x0).reshape(m, P) + b
        _assert_matches(be, got, expected)

    def test_membership_scan(self, be):
        W, b, X0, x0, actual = self._stacks()
        m, P, d = W.shape
        errors, dists = be.membership_scan(
            be.asarray(W), be.asarray(b), be.asarray(X0),
            be.asarray(x0), be.asarray(actual),
        )
        claims = (W.reshape(m * P, d) @ x0).reshape(m, P) + b
        _assert_matches(be, errors, np.abs(claims - actual).max(axis=1))
        _assert_matches(be, dists, ((X0 - x0) ** 2).sum(axis=1))

    def test_nearest_k(self, be):
        _, _, X0, x0, _ = self._stacks(m=32)
        k = 5
        got = be.nearest_k(be.asarray(X0), be.asarray(x0), k)
        dists = ((X0 - x0) ** 2).sum(axis=1)
        assert set(got.tolist()) == set(
            np.argpartition(dists, k - 1)[:k].tolist()
        )

    def test_sign_codes(self, be):
        rng = np.random.default_rng(8)
        bank = hyperplane_bank(5, 12)
        X = rng.normal(size=(16, 5))
        bank_dev = be.asarray(bank)
        expected = pack_sign_bits(X @ bank.T >= 0.0)
        got = be.sign_codes(be.asarray(X), bank_dev)
        assert np.array_equal(got, expected)
        for i in range(4):
            assert be.sign_code(bank_dev, be.asarray(X[i])) == int(expected[i])


class TestStubSeamDiscipline:
    """The stub refuses host arrays: the seam cannot be bypassed silently."""

    def test_adapters_reject_untagged_arrays(self):
        stub = StubBackend()
        host = np.ones((3, 3))
        calls = [
            lambda: stub.to_host(host),
            lambda: stub.matmul(host, host),
            lambda: stub.bT(host),
            lambda: stub.bT2(host),
            lambda: stub.einsum("ij->ji", host),
            lambda: stub.solve(host, np.ones(3)),
            lambda: stub.eigvalsh(host),
            lambda: stub.lstsq(host, np.ones(3)),
            lambda: stub.take(host, np.array([0])),
            lambda: stub.argpartition(np.ones(4), 1),
        ]
        for call in calls:
            with pytest.raises(ValidationError, match="untagged host array"):
                call()

    def test_tagged_arrays_flow_through(self):
        stub = StubBackend()
        dev = stub.asarray(np.eye(3))
        assert np.array_equal(stub.to_host(stub.matmul(dev, dev)), np.eye(3))

    def test_mixed_operands_rejected(self):
        stub = StubBackend()
        dev = stub.asarray(np.eye(3))
        with pytest.raises(ValidationError):
            stub.matmul(dev, np.eye(3))


class TestEngineGates:
    """The acceptance rule any backend must pass to serve the engine."""

    def test_weights_and_certificates_match_reference(self, be):
        points, probs, classes, centers = _bench_problem(6, 8, 5, 4, 11)
        engine = solve_pair_systems_stacked(
            points, probs, classes, centers=centers, backend=be
        )
        for b_idx in range(len(engine)):
            reference = reference_solve_all_pairs(
                points[b_idx], probs[b_idx], int(classes[b_idx]),
                center=centers[b_idx],
            )
            assert engine[b_idx].keys() == reference.keys()
            for pair, ref in reference.items():
                diff = np.abs(
                    engine[b_idx][pair].result.weights - ref.result.weights
                ).max()
                assert diff <= MAX_ENGINE_WEIGHT_DIFF
                assert engine[b_idx][pair].certified == ref.certified

    def test_stub_is_bitwise_numpy(self):
        points, probs, classes, centers = _bench_problem(5, 7, 4, 3, 12)
        via_numpy = solve_pair_systems_stacked(
            points, probs, classes, centers=centers, backend=NumpyBackend()
        )
        via_stub = solve_pair_systems_stacked(
            points, probs, classes, centers=centers, backend=StubBackend()
        )
        for eng_np, eng_stub in zip(via_numpy, via_stub):
            assert eng_np.keys() == eng_stub.keys()
            for pair in eng_np:
                assert np.array_equal(
                    eng_np[pair].result.weights,
                    eng_stub[pair].result.weights,
                )
                assert type(eng_stub[pair].result.weights) is np.ndarray
                assert eng_np[pair].certified == eng_stub[pair].certified


class TestServingTierEquivalence:
    """Stub-vs-numpy end-to-end through the real serving call graphs."""

    @pytest.mark.parametrize("region_index", [False, True])
    def test_region_cache(self, relu_api, blobs3, region_index):
        interps = [
            OpenAPIInterpreter(seed=0).interpret(relu_api, x)
            for x in blobs3.X[:4]
        ]
        caches = {
            name: RegionCache(region_index=region_index, backend=name)
            for name in ("numpy", "stub")
        }
        for cache in caches.values():
            for interp in interps:
                cache.insert(interp)
        for x in blobs3.X[:8]:
            y = relu_api.predict_proba(x)
            target = int(np.argmax(y))
            hits = {
                name: cache.lookup(x, y, target)
                for name, cache in caches.items()
            }
            assert (hits["numpy"] is None) == (hits["stub"] is None)
            if hits["numpy"] is not None:
                assert np.array_equal(
                    hits["numpy"].decision_features,
                    hits["stub"].decision_features,
                )

    def test_tiered_store(self, relu_api, blobs3, tmp_path):
        interps = [
            OpenAPIInterpreter(seed=0).interpret(relu_api, x)
            for x in blobs3.X[:4]
        ]
        stores = {
            name: TieredRegionStore(
                directory=tmp_path / name,
                max_entries=2,  # force L2 demotions so the disk scan runs
                fsync=False,
                backend=name,
            )
            for name in ("numpy", "stub")
        }
        for store in stores.values():
            for interp in interps:
                store.insert(interp)
        for x in blobs3.X[:8]:
            y = relu_api.predict_proba(x)
            target = int(np.argmax(y))
            hits = {
                name: store.lookup(x, y, target)
                for name, store in stores.items()
            }
            assert (hits["numpy"] is None) == (hits["stub"] is None)
            if hits["numpy"] is not None:
                assert np.array_equal(
                    hits["numpy"].decision_features,
                    hits["stub"].decision_features,
                )

    def test_sign_index(self):
        rng = np.random.default_rng(13)
        anchors = rng.normal(size=(64, 6))
        queries = rng.normal(size=(16, 6))
        indexes = {
            name: RegionSignIndex(d=6, bits=10, backend=name)
            for name in ("numpy", "stub")
        }
        for index in indexes.values():
            index.add_batch(range(len(anchors)), anchors)
        for x in queries:
            assert indexes["numpy"].code(x) == indexes["stub"].code(x)
            assert indexes["numpy"].shortlist(x, 8) == indexes[
                "stub"
            ].shortlist(x, 8)
        assert np.array_equal(
            indexes["numpy"].codes(queries), indexes["stub"].codes(queries)
        )
