"""Tests for the ReLU network (PLNN) and its piecewise linear structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.models import ReLUNetwork
from repro.models.activations import cross_entropy


class TestConstruction:
    def test_layer_shapes(self):
        net = ReLUNetwork([5, 8, 3], seed=0)
        assert net.weights[0].shape == (5, 8)
        assert net.weights[1].shape == (8, 3)
        assert net.n_hidden_layers == 1
        assert net.n_features == 5 and net.n_classes == 3

    def test_no_hidden_layer_allowed(self):
        net = ReLUNetwork([4, 2], seed=0)
        assert net.n_hidden_layers == 0
        assert net.region_id(np.zeros(4)) == "linear"

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValidationError):
            ReLUNetwork([5])
        with pytest.raises(ValidationError):
            ReLUNetwork([5, 0, 3])
        with pytest.raises(ValidationError):
            ReLUNetwork([5, 4, 1])  # single-class output


class TestForward:
    def test_batch_and_single_agree(self, relu_model, blobs3):
        x = blobs3.X[0]
        np.testing.assert_allclose(
            relu_model.decision_logits(x),
            relu_model.decision_logits(x[None, :])[0],
        )

    def test_probabilities_valid(self, relu_model, blobs3):
        probs = relu_model.predict_proba(blobs3.X[:10])
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_trained_accuracy(self, relu_model, blobs3):
        assert relu_model.accuracy(blobs3.X, blobs3.y) > 0.9

    def test_wrong_width_rejected(self, relu_model):
        with pytest.raises(ValidationError):
            relu_model.decision_logits(np.ones((2, 7)))


class TestBackprop:
    def test_gradients_match_finite_differences(self):
        """Exact backprop check on every parameter of a tiny network."""
        rng = np.random.default_rng(0)
        net = ReLUNetwork([3, 4, 2], seed=0)
        X = rng.uniform(0.2, 0.8, size=(6, 3))
        y = rng.integers(0, 2, size=6)
        _, grads_w, grads_b = net.loss_and_grads(X, y)

        eps = 1e-6
        for layer in range(len(net.weights)):
            W = net.weights[layer]
            for idx in [(0, 0), (W.shape[0] - 1, W.shape[1] - 1)]:
                original = W[idx]
                W[idx] = original + eps
                up = cross_entropy(net.decision_logits(X), y)
                W[idx] = original - eps
                down = cross_entropy(net.decision_logits(X), y)
                W[idx] = original
                numeric = (up - down) / (2 * eps)
                assert grads_w[layer][idx] == pytest.approx(numeric, abs=1e-6)
            b = net.biases[layer]
            original = b[0]
            b[0] = original + eps
            up = cross_entropy(net.decision_logits(X), y)
            b[0] = original - eps
            down = cross_entropy(net.decision_logits(X), y)
            b[0] = original
            numeric = (up - down) / (2 * eps)
            assert grads_b[layer][0] == pytest.approx(numeric, abs=1e-6)

    def test_forward_cached_consistent(self, relu_model, blobs3):
        logits, activations = relu_model.forward_cached(blobs3.X[:4])
        np.testing.assert_allclose(
            logits, relu_model.decision_logits(blobs3.X[:4])
        )
        assert len(activations) == relu_model.n_hidden_layers + 1


class TestRegionStructure:
    def test_activation_pattern_shapes(self, relu_model, blobs3):
        masks = relu_model.activation_pattern(blobs3.X[0])
        assert [m.shape[0] for m in masks] == [16, 8]
        assert all(m.dtype == bool for m in masks)

    def test_region_id_deterministic(self, relu_model, blobs3):
        x = blobs3.X[0]
        assert relu_model.region_id(x) == relu_model.region_id(x.copy())

    def test_nearby_points_share_region(self, relu_model, blobs3):
        x = blobs3.X[0]
        nudged = x + 1e-9
        assert relu_model.region_id(x) == relu_model.region_id(nudged)

    def test_multiple_regions_exist(self, relu_model, blobs3):
        ids = {relu_model.region_id(x) for x in blobs3.X}
        assert len(ids) > 1

    def test_local_params_reproduce_logits_exactly(self, relu_model, blobs3):
        """The OpenBox identity: inside a region the net IS the affine map."""
        for x in blobs3.X[:10]:
            local = relu_model.local_linear_params(x)
            np.testing.assert_allclose(
                local.logits(x), relu_model.decision_logits(x), atol=1e-10
            )

    def test_local_params_valid_on_whole_region(self, relu_model, blobs3):
        """The affine map extends to other points of the same region."""
        x = blobs3.X[0]
        local = relu_model.local_linear_params(x)
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(20):
            probe = x + rng.uniform(-1e-4, 1e-4, size=x.shape)
            if relu_model.region_id(probe) == local.region_id:
                hits += 1
                np.testing.assert_allclose(
                    local.logits(probe),
                    relu_model.decision_logits(probe),
                    atol=1e-10,
                )
        assert hits > 0  # tiny cube: sanity that we tested something

    def test_input_gradient_is_local_weight_column(self, relu_model, blobs3):
        x = blobs3.X[2]
        local = relu_model.local_linear_params(x)
        for c in range(3):
            np.testing.assert_allclose(
                relu_model.input_gradient(x, c), local.weights[:, c], atol=1e-12
            )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_openbox_identity_random_nets(self, seed):
        """relu_local_map reproduces forward logits for random nets/inputs."""
        rng = np.random.default_rng(seed)
        net = ReLUNetwork([4, 6, 5, 3], seed=seed)
        x = rng.uniform(-2, 2, size=4)
        local = net.local_linear_params(x)
        np.testing.assert_allclose(
            local.logits(x), net.decision_logits(x), atol=1e-9
        )


class TestParameterPlumbing:
    def test_round_trip(self, relu_model):
        params = relu_model.get_parameters()
        clone = ReLUNetwork(relu_model.layer_sizes, seed=99)
        clone.set_parameters(params)
        x = np.full(relu_model.n_features, 0.3)
        np.testing.assert_allclose(
            clone.decision_logits(x), relu_model.decision_logits(x)
        )

    def test_wrong_count_rejected(self, relu_model):
        with pytest.raises(ValidationError):
            relu_model.set_parameters(relu_model.get_parameters()[:-1])

    def test_wrong_shape_rejected(self):
        net = ReLUNetwork([3, 4, 2], seed=0)
        params = net.get_parameters()
        params[0] = np.ones((3, 5))
        with pytest.raises(ValidationError):
            net.set_parameters(params)
