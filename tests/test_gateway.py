"""Cross-process serving: fleet identity, worker kills, writer crashes.

Everything here crosses a *real* process boundary — worker fleets are
spawned subprocesses, the crash tests SIGKILL a live writer inside an
armed window — because the gateway's contracts are precisely the ones
in-process tests cannot exercise:

* **bitwise identity** — a gateway fleet of any width, index on or
  off, returns byte-identical ``result`` payloads to a sequential
  single-process :class:`InterpretationService` on the same
  drifting-Zipf replay.  Per-instance seeding makes each certified
  solve a pure function of ``(seed, x0)``; the workload's anchors are
  filtered to region-unambiguous ones so every request has exactly one
  servable answer regardless of which worker, tier, or epoch serves it;
* **fleet resilience** — SIGKILL of a worker mid-replay degrades
  capacity, never answers: remaining requests keep serving bitwise
  through the survivors, and an empty fleet reports 503, not garbage;
* **crash safety across processes** — readers over the shared L2
  survive the writer dying mid-index-rename and mid-compaction (the
  atomic-publish discipline means they keep serving the old epoch,
  bitwise), and a restarted writer re-adopts every fsynced record
  while never reviving a published-dead region.

Every subprocess interaction carries a hard timeout; a wedged child
fails the test rather than hanging the suite.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from proc_helpers import TINY_GATEWAY_KWARGS, CrashWriter
from proc_helpers import crash_writer
from repro.api import PredictionAPI
from repro.serving import (
    Gateway,
    GatewayClient,
    InterpretationService,
    SegmentStore,
    drifting_zipf_workload,
    replay_workload,
)
from repro.serving.worker import (
    distinct_region_anchors,
    interpretation_payload,
    train_worker_model,
)

def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="session")
def gateway_model():
    kwargs = dict(TINY_GATEWAY_KWARGS)
    return train_worker_model(
        kwargs.pop("dataset"), kwargs.pop("seed"), **kwargs
    )


@pytest.fixture(scope="session")
def gateway_workload(gateway_model):
    """``(requests, reference payloads)`` — the drifting-Zipf replay
    over region-unambiguous anchors, with the sequential single-process
    answers every fleet response must match byte for byte."""
    _data, test, model = gateway_model
    anchors = distinct_region_anchors(
        PredictionAPI(model),
        test.X[:40],
        seed=TINY_GATEWAY_KWARGS["seed"],
        limit=8,
    )
    assert anchors.shape[0] >= 3  # enough distinct regions to be a test
    requests = drifting_zipf_workload(anchors, 18, seed=1)
    service = InterpretationService(
        PredictionAPI(model),
        seed=TINY_GATEWAY_KWARGS["seed"],
        per_instance_seed=True,
    )
    reference = []
    with service:
        for x0 in requests:
            response = service.interpret(x0)
            assert response.ok
            reference.append(
                _canonical(interpretation_payload(response.interpretation))
            )
    return requests, reference


def _start_gateway(tmp_path, *, n_workers, **overrides) -> Gateway:
    kwargs = dict(TINY_GATEWAY_KWARGS)
    kwargs.update(overrides)
    gateway = Gateway(
        n_workers=n_workers, l2_dir=tmp_path / "l2", **kwargs
    )
    gateway.start()
    return gateway


class TestBitwiseIdentity:
    """Fleet responses equal the single-process reference, always."""

    @pytest.mark.parametrize(
        "n_workers,region_index",
        [(1, False), (2, True), (4, False)],
        ids=["x1", "x2-indexed", "x4"],
    )
    def test_fleet_matches_single_process(
        self, n_workers, region_index, tmp_path, gateway_workload
    ):
        requests, reference = gateway_workload
        gateway = _start_gateway(
            tmp_path, n_workers=n_workers, region_index=region_index
        )
        try:
            responses, _elapsed = replay_workload(
                gateway.host, gateway.port, requests, concurrency=4
            )
            stats = gateway.stats()
        finally:
            gateway.stop()
        assert len(responses) == len(requests)
        for i, (response, expected) in enumerate(zip(responses, reference)):
            assert response["ok"], (i, response)
            assert _canonical(response["result"]) == expected, i
        assert stats.n_ok == len(requests)
        assert stats.workers_alive == n_workers
        # The writer harvested the fleet's fresh solves into the
        # shared L2 (every anchor solved somewhere, exactly once live).
        assert stats.l2_records >= 1

    def test_second_gateway_reuses_harvested_regions(
        self, tmp_path, gateway_workload
    ):
        """The L2 directory is durable fleet state: a new fleet over
        the same directory serves the same bytes, now from disk."""
        requests, reference = gateway_workload
        gateway = _start_gateway(tmp_path, n_workers=1)
        try:
            replay_workload(gateway.host, gateway.port, requests)
        finally:
            gateway.stop()
        revived = _start_gateway(tmp_path, n_workers=2)
        try:
            responses, _ = replay_workload(
                revived.host, revived.port, requests
            )
            stats = revived.stats()
        finally:
            revived.stop()
        for response, expected in zip(responses, reference):
            assert response["ok"]
            assert _canonical(response["result"]) == expected
        # Nothing fresh to harvest: every region came from the disk tier.
        assert stats.harvested == 0


class TestFleetResilience:
    """Unsupervised (PR 8) behavior, pinned with ``supervise=False``:
    a dead worker degrades capacity and is never replaced.  The
    supervised counterparts live in ``tests/test_gateway_chaos.py``."""

    def test_requests_survive_worker_sigkill(
        self, tmp_path, gateway_workload
    ):
        requests, reference = gateway_workload
        gateway = _start_gateway(tmp_path, n_workers=2, supervise=False)
        try:
            half = len(requests) // 2
            first, _ = replay_workload(
                gateway.host, gateway.port, requests[:half]
            )
            gateway.kill_worker(0)
            second, _ = replay_workload(
                gateway.host, gateway.port, requests[half:]
            )
            stats = gateway.stats()
            status, health = GatewayClient(
                gateway.host, gateway.port
            ).healthz()
        finally:
            gateway.stop()
        for response, expected in zip(
            first + second, reference
        ):
            assert response["ok"]
            assert _canonical(response["result"]) == expected
        assert stats.workers_alive == 1
        assert status == 200 and health["workers_alive"] == 1

    def test_empty_fleet_is_503_not_garbage(self, tmp_path):
        """Both halves of the failover classification: the request that
        *observed* the death (dispatched, then the worker vanished) is
        a retryable ``worker_lost``; once the fleet is known-empty a
        request that was never dispatched anywhere is ``no_workers``."""
        gateway = _start_gateway(tmp_path, n_workers=1, supervise=False)
        try:
            gateway.kill_worker(0)
            client = GatewayClient(gateway.host, gateway.port)
            lost_status, lost_body = client.request(
                "POST", "/interpret", {"x0": [0.0] * 5}
            )
            status, body = client.request(
                "POST", "/interpret", {"x0": [0.0] * 5}
            )
            health_status, health = client.healthz()
        finally:
            gateway.stop()
        assert lost_status == 503
        assert lost_body["error"]["code"] == "worker_lost"
        assert lost_body["error"]["retryable"] is True
        assert status == 503
        assert body["error"]["code"] == "no_workers"
        assert body["error"]["retryable"] is True
        assert health_status == 503 and health["workers_alive"] == 0


class TestHttpFrontend:
    @pytest.fixture(scope="class")
    def running_gateway(self, tmp_path_factory):
        gateway = _start_gateway(
            tmp_path_factory.mktemp("gw-http"), n_workers=1
        )
        yield gateway
        gateway.stop()

    def test_unknown_path_is_404(self, running_gateway):
        status, body = GatewayClient(
            running_gateway.host, running_gateway.port
        ).request("GET", "/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_wrong_method_is_405(self, running_gateway):
        status, body = GatewayClient(
            running_gateway.host, running_gateway.port
        ).request("GET", "/interpret")
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"

    def test_unparseable_body_is_400(self, running_gateway):
        client = GatewayClient(running_gateway.host, running_gateway.port)
        client._conn.request(
            "POST", "/interpret", body="{not json",
            headers={"Content-Type": "application/json"},
        )
        response = client._conn.getresponse()
        body = json.loads(response.read())
        assert response.status == 400
        assert body["error"]["code"] == "invalid_request"

    def test_malformed_instance_is_service_error(self, running_gateway):
        body = GatewayClient(
            running_gateway.host, running_gateway.port
        ).interpret(np.array([1.0, 2.0]))  # wrong dimensionality
        assert body["ok"] is False
        assert body["error"]["code"] == "invalid_request"

    def test_stats_endpoint_shape(self, running_gateway):
        stats = GatewayClient(
            running_gateway.host, running_gateway.port
        ).stats()
        assert stats["n_workers"] == 1
        assert "per_worker" in stats and len(stats["per_worker"]) == 1


def _assert_record_bitwise(store: SegmentStore, sig: int) -> None:
    expected = crash_writer.synthetic_record(sig)
    got = store.read(sig)
    assert got[0] == expected[0] and got[1] == expected[1]
    for have, want in zip(got[2:6], expected[2:6]):
        assert np.asarray(have).tobytes() == np.asarray(want).tobytes()
    assert got[6] == expected[6]


class TestWriterCrash:
    """SIGKILL the L2 writer inside armed windows; readers and the
    restarted writer must both come out exact."""

    def test_reader_survives_kill_mid_index_rename(self, tmp_path):
        writer = CrashWriter(tmp_path)
        try:
            for sig in (1, 2, 3):
                writer.op("append", sig=sig)
            writer.op("publish")
            reader = SegmentStore(tmp_path, read_only=True)
            assert reader.live_signatures() == {1, 2, 3}

            # New record fsynced (append fsyncs each frame), then the
            # writer dies with the index tmp written but never renamed
            # into place.
            writer.op("append", sig=4)
            writer.kill_in_window("publish")
        finally:
            writer.close()

        # The reader's world is untouched — the publish never happened.
        assert reader.maybe_refresh() is False
        assert reader.live_signatures() == {1, 2, 3}
        for sig in (1, 2, 3):
            _assert_record_bitwise(reader, sig)

        # The restarted writer re-adopts the fsynced record by tail
        # scan (the kernel released the dead writer's flock).
        restarted = SegmentStore(tmp_path, exclusive=True)
        assert restarted.live_signatures() == {1, 2, 3, 4}
        _assert_record_bitwise(restarted, 4)
        restarted.persist_index()
        restarted.close()

        assert reader.maybe_refresh() is True
        assert reader.live_signatures() == {1, 2, 3, 4}
        _assert_record_bitwise(reader, 4)
        reader.close()

    def test_reader_survives_kill_mid_compaction(self, tmp_path):
        writer = CrashWriter(tmp_path)
        try:
            for sig in (1, 2, 3, 4):
                writer.op("append", sig=sig)
            writer.op("mark_dead", sig=1)
            writer.op("publish")
            reader = SegmentStore(tmp_path, read_only=True)
            assert reader.live_signatures() == {2, 3, 4}

            # Die after the compacted segment is fully written but
            # before the index rename adopts it: the old segments are
            # still the published truth.
            writer.kill_in_window("compact")
        finally:
            writer.close()

        assert reader.maybe_refresh() is False
        assert reader.live_signatures() == {2, 3, 4}
        for sig in (2, 3, 4):
            _assert_record_bitwise(reader, sig)

        # Restart: the half-compacted segment is an unreferenced
        # orphan (dropped), the published-dead region stays dead, and
        # the store keeps working.
        restarted = SegmentStore(tmp_path, exclusive=True)
        assert restarted.live_signatures() == {2, 3, 4}
        assert 1 not in restarted.live_signatures()
        for sig in (2, 3, 4):
            _assert_record_bitwise(restarted, sig)
        assert restarted.append(5, *crash_writer.synthetic_record(5))
        restarted.persist_index()
        restarted.close()

        assert reader.maybe_refresh() is True
        assert reader.live_signatures() == {2, 3, 4, 5}
        reader.close()

    def test_second_writer_is_locked_out_until_the_first_dies(
        self, tmp_path
    ):
        from repro.exceptions import ValidationError

        writer = CrashWriter(tmp_path)
        try:
            writer.op("append", sig=1)
            writer.op("publish")
            with pytest.raises(ValidationError, match="another writer"):
                SegmentStore(tmp_path, exclusive=True)
            writer.proc.kill()
            writer.proc.wait(timeout=30)
        finally:
            writer.close()
        # SIGKILL released the flock; the successor acquires it.
        successor = SegmentStore(tmp_path, exclusive=True)
        assert successor.live_signatures() == {1}
        successor.close()
