"""Failure injection for the serving layer.

The service's contract under failure:

* budget exhaustion mid-micro-batch produces structured
  ``budget_exhausted`` envelopes for the unfinished requests, keeps every
  result certified *before* the failure, and leaves the cache and meters
  consistent;
* certificate failures (noisy APIs, boundary instances) come back as
  ``certificate_failed`` envelopes without poisoning the queue — later
  requests are served normally;
* the cache never stores anything but certified solves, so failures can
  never corrupt future cache-served answers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    ERROR_BUDGET_EXHAUSTED,
    ERROR_CERTIFICATE_FAILED,
    NoisyResponse,
    PredictionAPI,
)
from repro.core import BatchOpenAPIInterpreter
from repro.exceptions import APIBudgetExceededError
from repro.serving import InterpretationService


class TestBatchBudgetModes:
    def test_raise_on_budget_default(self, relu_model, blobs3):
        d = blobs3.n_features
        api = PredictionAPI(relu_model, budget=3 + 3 * (d + 1) // 2)
        with pytest.raises(APIBudgetExceededError):
            BatchOpenAPIInterpreter(seed=0).interpret_batch(api, blobs3.X[:3])

    def test_partial_results_when_not_raising(self, relu_model, blobs3):
        """Instances certified before the budget died keep their results."""
        from repro.models.openbox import ground_truth_decision_features

        d = blobs3.n_features
        X = blobs3.X[:4]
        # Enough for round 0 plus exactly one full lock-step round.
        api = PredictionAPI(relu_model, budget=4 + 4 * (d + 1))
        result = BatchOpenAPIInterpreter(seed=0).interpret_batch(
            api, X, raise_on_budget=False
        )
        assert result.rounds == 1
        done = [i for i in result.interpretations if i is not None]
        if result.budget_exhausted:
            assert len(done) < 4
        for x0, interp in zip(X, result.interpretations):
            if interp is None:
                continue
            gt = ground_truth_decision_features(
                relu_model, x0, interp.target_class
            )
            np.testing.assert_allclose(interp.decision_features, gt, atol=1e-8)
        assert result.n_queries == api.query_count


class TestServiceBudgetExhaustion:
    def test_probe_round_budget_failure(self, relu_model, blobs3):
        """Budget dies on the probe round: every request gets a structured
        envelope, nothing hangs, meters match the API."""
        api = PredictionAPI(relu_model, budget=2)
        service = InterpretationService(api, seed=0)
        responses = service.interpret_many(blobs3.X[:4])
        assert len(responses) == 4
        assert all(not r.ok for r in responses)
        assert all(r.error.code == ERROR_BUDGET_EXHAUSTED for r in responses)
        assert all(r.error.retryable for r in responses)
        stats = service.stats()
        assert stats.n_errors == 4
        assert stats.n_queries == api.query_count  # nothing spent, nothing lost

    def test_mid_batch_budget_leaves_cache_and_meters_consistent(
        self, relu_model, blobs3
    ):
        d = blobs3.n_features
        X = blobs3.X[:4]
        # Probe round (4) + one lock-step round (4 * (d+1)), then death.
        api = PredictionAPI(relu_model, budget=4 + 4 * (d + 1))
        service = InterpretationService(api, seed=0)
        responses = service.interpret_many(X)
        assert len(responses) == 4
        ok = [r for r in responses if r.ok]
        failed = [r for r in responses if not r.ok]
        assert failed, "budget was sized to kill at least one instance"
        assert all(r.error.code == ERROR_BUDGET_EXHAUSTED for r in failed)
        # Meters: every spent query is accounted, none invented.
        stats = service.stats()
        assert stats.n_queries == api.query_count
        assert stats.round_trips == api.request_count
        assert stats.n_ok == len(ok) and stats.n_errors == len(failed)
        # Cache: only the certified results went in.
        if service.cache is not None:
            assert len(service.cache) == len(
                {r.interpretation.decision_features.tobytes() for r in ok}
            )

    def test_cache_still_serves_after_budget_death(self, relu_model, blobs3):
        """A hit needs only the probe query, so a warmed cache keeps
        serving even when the remaining budget can't fund a solve."""
        d = blobs3.n_features
        x0 = blobs3.X[0]
        warm_api = PredictionAPI(relu_model)
        warm_service = InterpretationService(warm_api, seed=0)
        warm = warm_service.interpret(x0)
        assert warm.ok
        spent = warm_api.query_count

        api = PredictionAPI(relu_model, budget=spent + 1)
        service = InterpretationService(api, seed=0)
        first = service.interpret(x0)
        assert first.ok  # fresh solve fits the budget exactly
        again = service.interpret(x0)  # only 1 query left: probe + hit
        assert again.ok and again.served_from_cache
        # A third, different-region request dies cleanly.
        other = next(
            x for x in blobs3.X[1:]
            if not np.array_equal(x, x0)
        )
        dead = service.interpret(other)
        assert not dead.ok
        assert dead.error.code == ERROR_BUDGET_EXHAUSTED
        assert service.stats().n_queries == api.query_count


class TestCertificateFailures:
    def test_noisy_api_returns_structured_envelope(self, relu_model, blobs3):
        api = PredictionAPI(
            relu_model, transform=NoisyResponse(0.02, seed=0)
        )
        service = InterpretationService(
            api, seed=0, max_iterations=3
        )
        response = service.interpret(blobs3.X[0])
        assert not response.ok
        assert response.error.code == ERROR_CERTIFICATE_FAILED
        assert not response.error.retryable
        assert response.interpretation is None

    def test_failure_does_not_poison_queue(self, relu_model, blobs3):
        """A noisy warm-up failure must not corrupt later clean serving
        (fresh API, same service pattern) — and on a clean API a mixed
        batch with an impossible instance still serves the good ones."""
        api = PredictionAPI(relu_model)
        service = InterpretationService(api, seed=0, max_iterations=25)
        responses = service.interpret_many(blobs3.X[:3])
        assert all(r.ok for r in responses)
        # Queue drained; later singles still work, cache still hits.
        again = service.interpret(blobs3.X[0])
        assert again.ok and again.served_from_cache

    def test_mixed_batch_noisy_api(self, relu_model, blobs3):
        """Under a noisy API every instance fails with an envelope — and
        the service keeps answering (no exception escapes, queue empty)."""
        api = PredictionAPI(relu_model, transform=NoisyResponse(0.05, seed=1))
        service = InterpretationService(api, seed=0, max_iterations=2)
        responses = service.interpret_many(blobs3.X[:3])
        assert len(responses) == 3
        assert all(
            not r.ok and r.error.code == ERROR_CERTIFICATE_FAILED
            for r in responses
        )
        stats = service.stats()
        assert stats.n_errors == 3
        assert stats.n_queries == api.query_count
        assert len(service._queue) == 0
        # The cache holds nothing uncertified.
        assert len(service.cache) == 0
