"""Property-based suite for the serving layer's exactness guarantees.

A seeded randomized sweep (no hypothesis dependency) over model families
(PLNN / maxout / logistic model tree) and random instances, asserting the
three laws the serving architecture is allowed to rely on:

(a) **cache transparency** — a cache-served interpretation is bitwise
    equal to the fresh certified solve that populated its region entry,
    and exact against the OpenBox ground truth;
(b) **batch/sequential agreement** — ``BatchOpenAPIInterpreter`` and
    ``OpenAPIInterpreter`` produce the same per-instance answer;
(c) **query conservation** — summing per-response ``n_queries`` across a
    micro-batched workload reproduces the API meter exactly, hits and
    misses alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PredictionAPI
from repro.core import BatchOpenAPIInterpreter, OpenAPIInterpreter
from repro.data import make_blobs
from repro.models import (
    LogisticModelTree,
    MaxOutNetwork,
    ReLUNetwork,
    TrainingConfig,
    train_network,
)
from repro.models.openbox import ground_truth_decision_features
from repro.serving import InterpretationService, RegionCache

MODEL_KINDS = ("plnn", "maxout", "tree")
SWEEP_SEEDS = (0, 1)


def _make_setup(kind: str, seed: int):
    """One randomized (model, dataset) pair of the requested family."""
    rng = np.random.default_rng(1000 * seed + hash(kind) % 997)
    if kind == "tree":
        # XOR-style layout so the LMT actually splits into regions.
        centers = np.array(
            [[0.2, 0.2], [0.8, 0.8], [0.2, 0.8], [0.8, 0.2]]
        ) + rng.normal(0, 0.02, size=(4, 2))
        X = np.vstack(
            [c + rng.normal(0, 0.07, size=(60, 2)) for c in centers]
        )
        y = np.repeat([0, 0, 1, 1], 60)
        X = np.clip(X, 0, 1)
        model = LogisticModelTree(
            min_samples_split=40, leaf_accuracy_stop=0.95, max_depth=4,
            seed=seed,
        ).fit(X, y)
        return model, X
    d = int(rng.integers(4, 8))
    ds = make_blobs(
        240, n_features=d, n_classes=3, separation=4.0, seed=seed + 20
    )
    if kind == "plnn":
        model = ReLUNetwork([d, 12, 8, 3], seed=seed)
    else:
        model = MaxOutNetwork([d, 8, 3], pieces=3, seed=seed)
    train_network(
        model, ds.X, ds.y,
        TrainingConfig(epochs=50, learning_rate=3e-3, seed=seed),
    )
    return model, ds.X


@pytest.fixture(scope="module", params=[
    (kind, seed) for kind in MODEL_KINDS for seed in SWEEP_SEEDS
], ids=lambda p: f"{p[0]}-s{p[1]}")
def setup(request):
    kind, seed = request.param
    model, X = _make_setup(kind, seed)
    return kind, seed, model, X


class TestCacheTransparency:
    """(a) cache-served answers are bitwise the certified region solve."""

    def test_repeat_queries_bitwise_equal(self, setup):
        kind, seed, model, X = setup
        api = PredictionAPI(model)
        service = InterpretationService(api, seed=seed)
        pool = X[:5]
        order = np.random.default_rng(seed).integers(0, 5, size=20)
        fresh_solves: set[bytes] = set()
        n_hits = 0
        for idx in order:
            response = service.interpret(pool[idx])
            assert response.ok, (kind, seed, idx)
            feats = response.interpretation.decision_features
            if response.served_from_cache:
                # Bitwise — not allclose — equality with one of the fresh
                # certified solves that populated the cache.  (Distinct
                # pool instances may legitimately share a region, so the
                # match is against the set of fresh solves, not per-index.)
                assert feats.tobytes() in fresh_solves
                assert response.interpretation.method == RegionCache.served_method
                n_hits += 1
            else:
                fresh_solves.add(feats.tobytes())
        # Every repeat of an already-seen instance must have hit.
        assert n_hits >= len(order) - len(np.unique(order))

    def test_cache_served_exact_against_ground_truth(self, setup):
        kind, seed, model, X = setup
        api = PredictionAPI(model)
        service = InterpretationService(api, seed=seed)
        pool = X[:4]
        responses = service.interpret_many(np.vstack([pool, pool, pool]))
        assert sum(r.served_from_cache for r in responses) >= len(pool)
        for response in responses:
            assert response.ok
            interp = response.interpretation
            gt = ground_truth_decision_features(
                model, interp.x0, interp.target_class
            )
            np.testing.assert_allclose(
                interp.decision_features, gt, atol=1e-7,
                err_msg=f"{kind} seed={seed} cached={response.served_from_cache}",
            )

    def test_same_region_jittered_instances_hit(self, setup):
        """Nearby (same-region) but non-identical instances are served
        from the cache and remain exact at *their own* x0."""
        kind, seed, model, X = setup
        api = PredictionAPI(model)
        service = InterpretationService(api, seed=seed)
        rng = np.random.default_rng(seed + 7)
        x0 = X[0]
        warm = service.interpret(x0)
        assert warm.ok
        hits = 0
        for _ in range(6):
            x = x0 + rng.normal(0, 1e-5, size=x0.shape)
            response = service.interpret(x)
            assert response.ok
            gt = ground_truth_decision_features(
                model, x, response.interpretation.target_class
            )
            np.testing.assert_allclose(
                response.interpretation.decision_features, gt, atol=1e-7
            )
            hits += response.served_from_cache
        # Tiny jitter stays within the activation region almost surely.
        assert hits >= 5


class TestBatchSequentialAgreement:
    """(b) lock-step batching changes round trips, never answers."""

    def test_per_instance_agreement(self, setup):
        kind, seed, model, X = setup
        instances = X[:6]

        seq_api = PredictionAPI(model)
        sequential = [
            OpenAPIInterpreter(seed=seed).interpret(seq_api, x0)
            for x0 in instances
        ]
        batch_api = PredictionAPI(model)
        batched = BatchOpenAPIInterpreter(seed=seed).interpret_batch(
            batch_api, instances
        )
        assert batched.n_failed == 0
        for x0, seq, bat in zip(instances, sequential, batched.interpretations):
            assert seq.target_class == bat.target_class
            assert seq.all_certified and bat.all_certified
            gt = ground_truth_decision_features(model, x0, seq.target_class)
            np.testing.assert_allclose(seq.decision_features, gt, atol=1e-8)
            np.testing.assert_allclose(bat.decision_features, gt, atol=1e-8)
            np.testing.assert_allclose(
                seq.decision_features, bat.decision_features, atol=1e-8
            )

    def test_batch_round_trips_bounded(self, setup):
        kind, seed, model, X = setup
        api = PredictionAPI(model)
        result = BatchOpenAPIInterpreter(seed=seed).interpret_batch(api, X[:6])
        iterations = [
            i.iterations for i in result.interpretations if i is not None
        ]
        assert result.rounds == max(iterations)
        assert api.request_count == 1 + result.rounds


class TestQueryConservation:
    """(c) every spent query is attributed to exactly one response."""

    def test_micro_batch_n_queries_conserved(self, setup):
        kind, seed, model, X = setup
        api = PredictionAPI(model)
        service = InterpretationService(api, seed=seed, max_batch_size=8)
        rng = np.random.default_rng(seed + 3)
        pool = X[:5]
        requests = pool[rng.integers(0, 5, size=24)]
        responses = service.interpret_many(requests)
        assert all(r.ok for r in responses)
        assert sum(r.n_queries for r in responses) == api.query_count
        stats = service.stats()
        assert stats.n_queries == api.query_count
        assert stats.round_trips == api.request_count
        assert stats.n_ok == len(responses)

    def test_conservation_without_cache(self, setup):
        kind, seed, model, X = setup
        api = PredictionAPI(model)
        service = InterpretationService(
            api, seed=seed, enable_cache=False, max_batch_size=8
        )
        responses = service.interpret_many(X[:6])
        assert all(r.ok for r in responses)
        assert not any(r.served_from_cache for r in responses)
        assert sum(r.n_queries for r in responses) == api.query_count
        assert service.stats().round_trips == api.request_count

    def test_cached_run_spends_fewer_queries(self, setup):
        kind, seed, model, X = setup
        pool = X[:3]
        requests = np.vstack([pool] * 5)

        cached_api = PredictionAPI(model)
        cached = InterpretationService(cached_api, seed=seed)
        cached.interpret_many(requests)

        uncached_api = PredictionAPI(model)
        uncached = InterpretationService(
            uncached_api, seed=seed, enable_cache=False
        )
        uncached.interpret_many(requests)

        assert cached_api.query_count < uncached_api.query_count
