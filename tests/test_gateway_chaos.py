"""Supervised-gateway chaos: kill storms, overload, rolling restarts.

The supervisor's contract (``repro/serving/gateway.py``) is that fault
handling never changes an answer byte: a respawned worker re-derives
the identical deterministic model, bounded admission sheds with a
structured 429 rather than degrading admitted requests, and a rolling
restart drains in-flight work before touching a process.  Every arm
here replays the same drifting-Zipf workload as ``tests/test_gateway.py``
and holds fleet responses to the sequential single-process reference,
byte for byte, while the fault is injected:

* **SIGKILL storm** — kill workers staggered mid-replay; survivors
  absorb the traffic bitwise, the supervisor respawns the dead slots
  (healthz handshake before re-admission), and restored capacity
  serves bitwise again;
* **restart storm** — a slot that keeps dying respawns under
  exponential backoff that escalates to the cap, so a crash loop
  cannot monopolize the gateway;
* **overload soak** — a client pool far above ``queue_capacity``:
  every response is a bitwise-correct 200 or a structured 429 with
  ``Retry-After``, queue depth never exceeds capacity, and the event
  loop leaks no tasks once the load drops;
* **zero-loss rolling restart** — ``POST /admin/restart`` mid-replay
  replaces every worker pid without dropping or corrupting a single
  request;
* **failover classification** — the worker ``crash`` op (a pure
  ``os._exit``, the protocol-level SIGKILL) deterministically produces
  the retryable ``worker_lost`` half of the 503 classification.

Every subprocess interaction carries a hard timeout; a wedged fleet
fails the test rather than hanging the suite.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from proc_helpers import TINY_GATEWAY_KWARGS
from repro.api import PredictionAPI
from repro.serving import (
    Gateway,
    GatewayClient,
    InterpretationService,
    drifting_zipf_workload,
    replay_workload,
)
from repro.serving.worker import (
    distinct_region_anchors,
    interpretation_payload,
    train_worker_model,
)

def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def _wait_for(predicate, *, timeout: float = 120.0,
              interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture(scope="session")
def chaos_model():
    kwargs = dict(TINY_GATEWAY_KWARGS)
    return train_worker_model(
        kwargs.pop("dataset"), kwargs.pop("seed"), **kwargs
    )


@pytest.fixture(scope="session")
def chaos_workload(chaos_model):
    """``(requests, reference payloads)`` — identical recipe to the
    ``tests/test_gateway.py`` workload so both suites pin the same
    single-process answers."""
    _data, test, model = chaos_model
    anchors = distinct_region_anchors(
        PredictionAPI(model),
        test.X[:40],
        seed=TINY_GATEWAY_KWARGS["seed"],
        limit=8,
    )
    assert anchors.shape[0] >= 3
    requests = drifting_zipf_workload(anchors, 18, seed=1)
    service = InterpretationService(
        PredictionAPI(model),
        seed=TINY_GATEWAY_KWARGS["seed"],
        per_instance_seed=True,
    )
    reference = []
    with service:
        for x0 in requests:
            response = service.interpret(x0)
            assert response.ok
            reference.append(
                _canonical(interpretation_payload(response.interpretation))
            )
    return requests, reference


def _start_gateway(tmp_path, *, n_workers, **overrides) -> Gateway:
    kwargs = dict(TINY_GATEWAY_KWARGS)
    kwargs.update(overrides)
    gateway = Gateway(
        n_workers=n_workers, l2_dir=tmp_path / "l2", **kwargs
    )
    gateway.start()
    return gateway


def _assert_bitwise(responses: list[dict], reference: list[str]) -> None:
    assert len(responses) == len(reference)
    for i, (response, expected) in enumerate(zip(responses, reference)):
        assert response["ok"], (i, response)
        assert _canonical(response["result"]) == expected, i


class TestSigkillStorm:
    """Kill k of n workers staggered mid-replay: survivors keep the
    stream bitwise, the supervisor restores full capacity, and the
    respawned slots serve bitwise too."""

    def test_supervisor_restores_capacity_bitwise(
        self, tmp_path, chaos_workload
    ):
        requests, reference = chaos_workload
        storm = np.concatenate([requests] * 4)
        storm_reference = reference * 4
        gateway = _start_gateway(
            tmp_path, n_workers=3,
            supervisor_poll_s=0.05, restart_backoff_s=0.0,
            restart_backoff_cap_s=0.0,
        )
        try:
            before = set(gateway.worker_pids())
            result: dict = {}

            def _replay():
                result["responses"], _ = replay_workload(
                    gateway.host, gateway.port, storm, concurrency=4
                )

            thread = threading.Thread(target=_replay)
            thread.start()
            time.sleep(0.3)
            gateway.kill_worker(0)
            time.sleep(0.3)
            gateway.kill_worker(1)
            thread.join(timeout=300)
            assert not thread.is_alive()

            # Every admitted request in flight through the storm came
            # back bitwise — in-band failover, never a wrong answer.
            _assert_bitwise(result["responses"], storm_reference)

            # The supervisor respawns both dead slots and re-admits
            # them only after the healthz handshake.
            assert _wait_for(
                lambda: gateway.stats().workers_alive == 3, timeout=120.0
            ), "supervisor never restored fleet capacity"
            stats = gateway.stats()
            assert stats.n_restarts >= 2
            after = set(gateway.worker_pids())
            assert len(after) == 3
            assert len(after - before) >= 2  # two slots hold fresh pids

            # Restored capacity serves the workload bitwise: the
            # respawned workers re-derived the identical model.
            responses, _ = replay_workload(
                gateway.host, gateway.port, requests, concurrency=4
            )
            _assert_bitwise(responses, reference)
        finally:
            gateway.stop()


class TestRestartStorm:
    """A slot that dies immediately after every respawn escalates its
    backoff toward the cap instead of respawning at full speed."""

    def test_backoff_escalates_to_cap(self, tmp_path):
        base, cap = 0.2, 0.8
        gateway = _start_gateway(
            tmp_path, n_workers=1,
            supervisor_poll_s=0.02, restart_backoff_s=base,
            restart_backoff_cap_s=cap, restart_backoff_reset_s=600.0,
        )
        try:
            observed = []
            for kill in range(4):
                old_pid = gateway.worker_pids()[0]
                gateway.kill_worker(0)
                assert _wait_for(
                    lambda: (
                        gateway.worker_pids()[0] != old_pid
                        and gateway.stats().per_worker[0]["alive"]
                    ),
                    timeout=120.0,
                ), f"slot never respawned after kill {kill}"
                observed.append(gateway.stats().per_worker[0]["backoff_s"])
            stats = gateway.stats()
        finally:
            gateway.stop()
        # First death pays no backoff (the slot had never respawned);
        # every death inside the reset window after that doubles the
        # delay from the base until the cap pins it.
        assert observed == [0.0, base, 2 * base, cap]
        assert stats.n_restarts == 4
        assert stats.per_worker[0]["restarts"] == 4


class TestOverloadSoak:
    """A client pool far above ``queue_capacity``: every response is a
    bitwise-correct 200 or a structured 429, the depth bound holds,
    and nothing leaks once the pool drains."""

    N_THREADS = 12
    REQUESTS_PER_THREAD = 4

    def test_bounded_admission_sheds_structured(
        self, tmp_path, chaos_workload
    ):
        requests, reference = chaos_workload
        retry_after = 3
        gateway = _start_gateway(
            tmp_path, n_workers=1, queue_capacity=1,
            retry_after_s=retry_after,
        )
        try:
            baseline = gateway.pending_task_count()
            barrier = threading.Barrier(self.N_THREADS)
            results: list[list] = [[] for _ in range(self.N_THREADS)]

            def _soak(slot: int) -> None:
                client = GatewayClient(gateway.host, gateway.port)
                try:
                    barrier.wait(timeout=60)
                    for turn in range(self.REQUESTS_PER_THREAD):
                        i = (slot + turn) % len(requests)
                        status, body = client.request(
                            "POST", "/interpret",
                            {"x0": requests[i].tolist()},
                        )
                        results[slot].append(
                            (i, status, body, dict(client.last_headers))
                        )
                finally:
                    client.close()

            threads = [
                threading.Thread(target=_soak, args=(slot,))
                for slot in range(self.N_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
                assert not thread.is_alive()

            n_ok = n_shed = 0
            for rows in results:
                assert len(rows) == self.REQUESTS_PER_THREAD
                for i, status, body, headers in rows:
                    if status == 200:
                        n_ok += 1
                        assert body["ok"], body
                        assert _canonical(body["result"]) == reference[i]
                    else:
                        n_shed += 1
                        assert status == 429, (status, body)
                        assert body["ok"] is False
                        assert body["error"]["code"] == "overloaded"
                        assert body["error"]["retryable"] is True
                        assert headers["retry-after"] == str(retry_after)

            total = self.N_THREADS * self.REQUESTS_PER_THREAD
            assert n_ok + n_shed == total
            assert n_ok >= 1  # someone always gets through
            # Twelve clients firing into a one-deep queue must shed.
            assert n_shed >= 1

            stats = gateway.stats()
            assert stats.n_shed == n_shed
            assert stats.n_ok == n_ok
            assert stats.queue_depth == 0
            assert 1 <= stats.queue_depth_peak <= stats.queue_capacity
            # The histogram meters *admitted* requests only; shed 429s
            # turn around before any latency worth measuring accrues.
            assert sum(stats.latency_ms_counts) == stats.n_requests == n_ok

            # No orphaned asyncio tasks: once every client connection
            # closes, the loop settles back to its resting task set.
            assert _wait_for(
                lambda: gateway.pending_task_count() <= baseline,
                timeout=60.0,
            ), (
                f"leaked tasks: {gateway.pending_task_count()} pending "
                f"vs baseline {baseline}"
            )
        finally:
            gateway.stop()


class TestRollingRestart:
    """``POST /admin/restart`` mid-replay: every worker pid replaced,
    zero requests dropped, every answer bitwise."""

    def test_zero_loss_mid_replay(self, tmp_path, chaos_workload):
        requests, reference = chaos_workload
        stream = np.concatenate([requests] * 4)
        stream_reference = reference * 4
        gateway = _start_gateway(tmp_path, n_workers=2)
        try:
            before = set(gateway.worker_pids())
            result: dict = {}

            def _replay():
                result["responses"], _ = replay_workload(
                    gateway.host, gateway.port, stream, concurrency=4
                )

            thread = threading.Thread(target=_replay)
            thread.start()
            time.sleep(0.2)
            status, summary = GatewayClient(
                gateway.host, gateway.port, timeout=600.0
            ).rolling_restart()
            thread.join(timeout=300)
            assert not thread.is_alive()

            assert status == 200, summary
            assert summary["ok"] is True
            assert sorted(summary["restarted"]) == [0, 1]
            assert summary["skipped"] == []

            # Zero loss: the full stream answered, bitwise, with the
            # restart running through the middle of it.
            _assert_bitwise(result["responses"], stream_reference)

            after = set(gateway.worker_pids())
            assert after.isdisjoint(before)  # every process replaced
            stats = gateway.stats()
            assert stats.workers_alive == 2
            assert stats.n_restarts == 2
            assert stats.n_errors == 0
        finally:
            gateway.stop()

    def test_admin_restart_is_post_only(self, tmp_path):
        gateway = _start_gateway(tmp_path, n_workers=1)
        try:
            status, body = GatewayClient(
                gateway.host, gateway.port
            ).request("GET", "/admin/restart")
        finally:
            gateway.stop()
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"


class TestFailoverClassification:
    """The worker ``crash`` op — ``os._exit`` with no reply, the
    protocol-level SIGKILL — deterministically produces the retryable
    ``worker_lost`` classification; the never-dispatched half
    (``no_workers``) is pinned in ``tests/test_gateway.py``."""

    def test_crash_op_mid_response_is_worker_lost(self, tmp_path):
        gateway = _start_gateway(tmp_path, n_workers=1, supervise=False)
        try:
            gateway.crash_worker(0)
            # ``os._exit(17)``, not a signal: the protocol-level kill.
            assert gateway._workers[0].proc.returncode == 17

            client = GatewayClient(gateway.host, gateway.port)
            lost_status, lost_body = client.request(
                "POST", "/interpret", {"x0": [0.0] * 5}
            )
            next_status, next_body = client.request(
                "POST", "/interpret", {"x0": [0.0] * 5}
            )
            stats = gateway.stats()
        finally:
            gateway.stop()
        assert lost_status == 503
        assert lost_body["error"]["code"] == "worker_lost"
        assert lost_body["error"]["retryable"] is True
        assert next_status == 503
        assert next_body["error"]["code"] == "no_workers"
        assert stats.n_worker_lost == 1

    def test_supervised_crash_op_is_respawned(self, tmp_path):
        """Under supervision the same crash is absorbed: the slot
        respawns (exit code 17 is just another death) and the fleet
        returns to full strength."""
        gateway = _start_gateway(
            tmp_path, n_workers=1,
            supervisor_poll_s=0.05, restart_backoff_s=0.0,
            restart_backoff_cap_s=0.0,
        )
        try:
            old_pid = gateway.crash_worker(0)
            assert _wait_for(
                lambda: (
                    gateway.worker_pids()[0] != old_pid
                    and gateway.stats().workers_alive == 1
                ),
                timeout=120.0,
            ), "supervisor never respawned the crashed slot"
            stats = gateway.stats()
        finally:
            gateway.stop()
        assert stats.n_restarts == 1
        assert stats.per_worker[0]["restarts"] == 1
