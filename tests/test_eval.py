"""Tests for the experiment harness, tables, figures and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BaseInterpreter
from repro.core.types import Attribution
from repro.eval import (
    ExperimentConfig,
    build_setups,
    build_table1,
    interpret_instances,
    render_heatmap,
    render_series,
    render_table,
)
from repro.eval.figures import (
    build_fig2_heatmaps,
    build_fig3_effectiveness,
    build_fig4_consistency,
    build_fig567_quality,
)
from repro.eval.harness import black_box_method_grid, effectiveness_method_grid
from repro.exceptions import CertificateError, ValidationError


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    return ExperimentConfig.test_scale().scaled(
        datasets=("synthetic-fashion",), n_interpret=3
    )


@pytest.fixture(scope="module")
def tiny_setups(tiny_config):
    return build_setups(tiny_config)


class TestConfig:
    def test_presets_valid(self):
        ExperimentConfig.bench_scale()
        ExperimentConfig.test_scale()
        ExperimentConfig.paper_scale()

    def test_paper_scale_faithful(self):
        cfg = ExperimentConfig.paper_scale()
        assert cfg.image_size == 28
        assert cfg.n_features == 784
        assert cfg.plnn_hidden == (256, 128, 100)
        assert cfg.n_interpret == 1000
        assert cfg.lmt_min_samples_split == 100

    def test_scaled_override(self):
        cfg = ExperimentConfig().scaled(n_interpret=7)
        assert cfg.n_interpret == 7

    def test_validations(self):
        with pytest.raises(ValidationError):
            ExperimentConfig(models=("forest",))
        with pytest.raises(ValidationError):
            ExperimentConfig(datasets=())
        with pytest.raises(ValidationError):
            ExperimentConfig(image_size=2)
        with pytest.raises(ValidationError):
            ExperimentConfig(h_grid=())


class TestBuildSetups:
    def test_grid_complete(self, tiny_setups, tiny_config):
        assert len(tiny_setups) == len(tiny_config.datasets) * len(
            tiny_config.models
        )
        labels = {s.label for s in tiny_setups}
        assert "synthetic-fashion/LMT" in labels
        assert "synthetic-fashion/PLNN" in labels

    def test_models_learned_something(self, tiny_setups):
        for setup in tiny_setups:
            assert setup.train_accuracy > 0.7, setup.label

    def test_split_sizes(self, tiny_setups, tiny_config):
        for setup in tiny_setups:
            total = setup.train.n_samples + setup.test.n_samples
            assert total == tiny_config.n_train + tiny_config.n_test

    def test_maxout_kind_supported(self, tiny_config):
        cfg = tiny_config.scaled(models=("maxout",), n_train=240, n_test=80)
        setups = build_setups(cfg)
        assert setups[0].model_name == "maxout"
        assert setups[0].train_accuracy > 0.5


class TestMethodGrids:
    def test_black_box_grid_keys(self, tiny_setups):
        methods = black_box_method_grid(tiny_setups[0].api, (1e-4, 1e-2))
        assert set(methods) == {
            "OpenAPI",
            "L(1e-04)", "L(1e-02)",
            "R(1e-04)", "R(1e-02)",
            "N(1e-04)", "N(1e-02)",
            "Z(1e-04)", "Z(1e-02)",
        }

    def test_effectiveness_grid_keys(self, tiny_setups):
        methods = effectiveness_method_grid(tiny_setups[0])
        assert set(methods) == {"S", "OA", "I", "G", "L"}
        assert all(isinstance(m, BaseInterpreter) for m in methods.values())


class TestInterpretInstances:
    def test_skips_failures(self, tiny_setups):
        class Flaky(BaseInterpreter):
            method_name = "flaky"

            def explain(self, x0, c=None):
                if x0[0] > 0.5:
                    raise CertificateError("boundary")
                return Attribution(values=np.zeros_like(x0))

        instances = np.array([[0.1, 0.2], [0.9, 0.2], [0.3, 0.3]])
        atts, kept = interpret_instances(Flaky(), instances)
        assert kept == [0, 2]
        assert len(atts) == 2

    def test_raise_mode(self):
        class AlwaysFails(BaseInterpreter):
            method_name = "fails"

            def explain(self, x0, c=None):
                raise CertificateError("nope")

        with pytest.raises(CertificateError):
            interpret_instances(
                AlwaysFails(), np.ones((1, 2)), on_failure="raise"
            )

    def test_bad_mode_rejected(self):
        class Dummy(BaseInterpreter):
            method_name = "dummy"

            def explain(self, x0, c=None):
                return Attribution(values=np.zeros_like(x0))

        with pytest.raises(ValidationError):
            interpret_instances(Dummy(), np.ones((1, 2)), on_failure="explode")


class TestTable1:
    def test_rows_from_setups(self, tiny_setups):
        rows = build_table1(setups=tiny_setups)
        assert len(rows) == len(tiny_setups)
        for row in rows:
            assert 0.0 <= row.train_accuracy <= 1.0
            assert 0.0 <= row.test_accuracy <= 1.0


class TestFigureBuilders:
    def test_fig2(self, tiny_setups):
        entries = build_fig2_heatmaps(
            tiny_setups[0], classes=(0, 1), n_per_class=2, seed=0
        )
        assert len(entries) <= 2
        for entry in entries:
            assert entry.average_image.shape == entry.average_heatmap.shape
            assert entry.n_instances >= 1

    def test_fig2_requires_images(self, linear_model, blobs3):
        from repro.api import PredictionAPI
        from repro.eval.harness import ExperimentSetup

        setup = ExperimentSetup(
            dataset_name="blobs",
            model_name="linear",
            train=blobs3,
            test=blobs3,
            model=linear_model,
            api=PredictionAPI(linear_model),
            train_accuracy=1.0,
            test_accuracy=1.0,
        )
        with pytest.raises(ValidationError):
            build_fig2_heatmaps(setup)

    def test_fig3(self, tiny_setups, tiny_config):
        result = build_fig3_effectiveness(tiny_setups[1], tiny_config, seed=0)
        assert set(result.curves) == {"S", "OA", "I", "G", "L"}
        for curves in result.curves.values():
            assert np.all(curves.avg_cpp >= 0)
            assert np.all(np.diff(curves.nlci) >= 0)

    def test_fig4(self, tiny_setups, tiny_config):
        result = build_fig4_consistency(tiny_setups[1], tiny_config, seed=0)
        assert "OA" in result.scores
        for scores in result.scores.values():
            assert np.all(scores <= 1.0 + 1e-9)
            assert np.all(np.diff(scores) <= 1e-12)  # sorted descending

    def test_fig567(self, tiny_setups, tiny_config):
        cfg = tiny_config.scaled(h_grid=(1e-4, 1e-2))
        result = build_fig567_quality(tiny_setups[1], cfg, seed=0)
        assert "OpenAPI" in result.cells
        open_api = result.cells["OpenAPI"]
        # The paper's headline shape: OpenAPI's samples are clean and its
        # interpretation exact.
        assert open_api.avg_rd == 0.0
        assert open_api.wd_mean == pytest.approx(0.0, abs=1e-12)
        assert open_api.l1_mean < 1e-6
        for name, cell in result.cells.items():
            assert cell.l1_mean >= 0
            assert cell.n_instances > 0


class TestReporting:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["x", 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_render_table_validations(self):
        with pytest.raises(ValidationError):
            render_table([], [])
        with pytest.raises(ValidationError):
            render_table(["a"], [[1, 2]])

    def test_render_series_downsamples(self):
        series = {"m": np.linspace(0, 1, 200)}
        out = render_series(series, max_points=5)
        assert out.count("\n") <= 8

    def test_render_series_empty(self):
        assert render_series({}) == "(no series)"

    def test_render_heatmap_unsigned(self):
        out = render_heatmap(np.array([[0.0, 1.0], [0.5, 0.25]]))
        assert len(out.splitlines()) == 2
        assert "@" in out  # max value maps to densest shade

    def test_render_heatmap_signed(self):
        out = render_heatmap(np.array([[-1.0, 1.0]]))
        assert "-" in out

    def test_render_heatmap_validation(self):
        with pytest.raises(ValidationError):
            render_heatmap(np.ones(3))
