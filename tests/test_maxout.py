"""Tests for the MaxOut network extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.models import MaxOutNetwork
from repro.models.activations import cross_entropy


class TestConstruction:
    def test_shapes(self):
        net = MaxOutNetwork([5, 6, 3], pieces=3, seed=0)
        assert net.hidden_weights[0].shape == (5, 6, 3)
        assert net.hidden_biases[0].shape == (6, 3)
        assert net.out_weight.shape == (6, 3)

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            MaxOutNetwork([5])
        with pytest.raises(ValidationError):
            MaxOutNetwork([5, 4, 3], pieces=1)
        with pytest.raises(ValidationError):
            MaxOutNetwork([5, 0, 3])


class TestForward:
    def test_probabilities_valid(self, maxout_model, blobs3):
        probs = maxout_model.predict_proba(blobs3.X[:10])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_trained_accuracy(self, maxout_model, blobs3):
        assert maxout_model.accuracy(blobs3.X, blobs3.y) > 0.85

    def test_single_and_batch_agree(self, maxout_model, blobs3):
        x = blobs3.X[0]
        np.testing.assert_allclose(
            maxout_model.decision_logits(x),
            maxout_model.decision_logits(x[None, :])[0],
        )


class TestBackprop:
    def test_gradients_match_finite_differences(self):
        rng = np.random.default_rng(1)
        net = MaxOutNetwork([3, 4, 2], pieces=2, seed=1)
        X = rng.uniform(0.2, 0.8, size=(5, 3))
        y = rng.integers(0, 2, size=5)
        _, grads_w, grads_b = net.loss_and_grads(X, y)
        params = net.get_parameters()
        grads = []
        for gw, gb in zip(grads_w, grads_b):
            grads.extend([gw, gb])

        eps = 1e-6
        for p, g in zip(params, grads):
            flat_p = p.ravel()
            flat_g = g.ravel()
            for idx in (0, flat_p.size - 1):
                original = flat_p[idx]
                flat_p[idx] = original + eps
                up = cross_entropy(net.decision_logits(X), y)
                flat_p[idx] = original - eps
                down = cross_entropy(net.decision_logits(X), y)
                flat_p[idx] = original
                numeric = (up - down) / (2 * eps)
                assert flat_g[idx] == pytest.approx(numeric, abs=1e-6)


class TestRegionStructure:
    def test_winner_pattern_shapes(self, maxout_model, blobs3):
        winners = maxout_model.winner_pattern(blobs3.X[0])
        assert len(winners) == 1
        assert winners[0].shape == (8,)
        assert np.all((winners[0] >= 0) & (winners[0] < 3))

    def test_local_params_reproduce_logits(self, maxout_model, blobs3):
        for x in blobs3.X[:10]:
            local = maxout_model.local_linear_params(x)
            np.testing.assert_allclose(
                local.logits(x), maxout_model.decision_logits(x), atol=1e-10
            )

    def test_region_id_stable(self, maxout_model, blobs3):
        x = blobs3.X[0]
        assert maxout_model.region_id(x) == maxout_model.region_id(x + 1e-12)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_local_map_identity(self, seed):
        rng = np.random.default_rng(seed)
        net = MaxOutNetwork([4, 5, 3], pieces=3, seed=seed)
        x = rng.uniform(-1, 1, size=4)
        local = net.local_linear_params(x)
        np.testing.assert_allclose(
            local.logits(x), net.decision_logits(x), atol=1e-9
        )


class TestParameterPlumbing:
    def test_round_trip(self, maxout_model):
        clone = MaxOutNetwork(
            maxout_model.layer_sizes, pieces=maxout_model.pieces, seed=77
        )
        clone.set_parameters(maxout_model.get_parameters())
        x = np.full(maxout_model.n_features, 0.4)
        np.testing.assert_allclose(
            clone.decision_logits(x), maxout_model.decision_logits(x)
        )

    def test_wrong_count_rejected(self, maxout_model):
        with pytest.raises(ValidationError):
            maxout_model.set_parameters(maxout_model.get_parameters()[:-1])
