"""End-to-end integration tests across the whole library.

These exercise full pipelines — data generation → training → API wrapping →
interpretation → metrics — the way the examples and benchmarks do, at the
smallest scale that still exercises multi-region structure.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import PredictionAPI, RoundedResponse
from repro.core import OpenAPIInterpreter
from repro.data import load_dataset, train_test_split
from repro.eval import ExperimentConfig, build_setups
from repro.eval.figures import build_fig567_quality
from repro.exceptions import CertificateError
from repro.extraction import PiecewiseSurrogate, RegionExplorer, fidelity_report
from repro.metrics import l1_distance
from repro.models import LogisticModelTree, ReLUNetwork, TrainingConfig, train_network
from repro.models.openbox import ground_truth_decision_features


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.baselines as b
        import repro.core as c
        import repro.data as d
        import repro.eval as e
        import repro.extraction as x
        import repro.metrics as m
        import repro.models as mo
        import repro.utils as u

        for module in (b, c, d, e, x, m, mo, u):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module, name)


class TestImagePipelineEndToEnd:
    """The paper's pipeline on a miniature image problem."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        ds = load_dataset("mnist", 260, size=7, seed=0)
        train, test = train_test_split(ds, test_fraction=0.2, seed=0)
        net = ReLUNetwork([ds.n_features, 24, 10], seed=0)
        train_network(
            net, train.X, train.y,
            TrainingConfig(epochs=100, learning_rate=3e-3, seed=0),
        )
        return train, test, net, PredictionAPI(net)

    def test_model_learns(self, pipeline):
        train, test, net, _ = pipeline
        assert net.accuracy(train.X, train.y) > 0.85

    def test_openapi_exact_on_image_model(self, pipeline):
        _, test, net, api = pipeline
        interpreter = OpenAPIInterpreter(seed=1)
        checked = 0
        for x0 in test.X[:5]:
            try:
                interp = interpreter.interpret(api, x0)
            except CertificateError:  # boundary instance: probability ~0
                continue
            gt = ground_truth_decision_features(net, x0, interp.target_class)
            assert l1_distance(gt, interp.decision_features) < 1e-6
            checked += 1
        assert checked >= 4

    def test_extraction_round_trip(self, pipeline):
        train, test, _, api = pipeline
        explorer = RegionExplorer(api, seed=2)
        explorer.explore(train.X[:25])
        surrogate = PiecewiseSurrogate(explorer.records)
        report = fidelity_report(surrogate, api, test.X[:40])
        assert report.label_agreement > 0.8


class TestLMTPipelineEndToEnd:
    def test_openapi_exact_on_image_lmt(self):
        ds = load_dataset("fmnist", 300, size=7, seed=3)
        train, test = train_test_split(ds, test_fraction=0.2, seed=3)
        lmt = LogisticModelTree(
            min_samples_split=80, max_depth=3, leaf_accuracy_stop=0.95, seed=3
        ).fit(train.X, train.y, n_classes=ds.n_classes)
        api = PredictionAPI(lmt)
        interpreter = OpenAPIInterpreter(seed=3)
        for x0 in test.X[:3]:
            interp = interpreter.interpret(api, x0)
            gt = ground_truth_decision_features(lmt, x0, interp.target_class)
            assert l1_distance(gt, interp.decision_features) < 1e-6


class TestRobustnessAblation:
    def test_rounding_breaks_certificate_honestly(self, relu_model, blobs3):
        """A 2-decimal API cannot support exact recovery; OpenAPI must
        refuse (CertificateError) rather than return a wrong answer."""
        api = PredictionAPI(relu_model, transform=RoundedResponse(2))
        interpreter = OpenAPIInterpreter(seed=0, max_iterations=8)
        with pytest.raises(CertificateError):
            interpreter.interpret(api, blobs3.X[0])

    def test_high_precision_rounding_tolerated_or_refused(
        self, relu_model, blobs3
    ):
        """With 12-decimal rounding the certificate may pass (noise below
        tolerance) or refuse — but a *certified* answer must be accurate."""
        api = PredictionAPI(relu_model, transform=RoundedResponse(12))
        interpreter = OpenAPIInterpreter(seed=0, rtol=1e-5, max_iterations=30)
        try:
            interp = interpreter.interpret(api, blobs3.X[0])
        except CertificateError:
            return
        gt = ground_truth_decision_features(
            relu_model, blobs3.X[0], interp.target_class
        )
        assert l1_distance(gt, interp.decision_features) < 1e-2


class TestFullExperimentGridSmoke:
    def test_minimal_grid_runs(self):
        cfg = ExperimentConfig.test_scale().scaled(
            datasets=("synthetic-digits",),
            models=("lmt",),
            n_interpret=2,
            h_grid=(1e-4,),
        )
        setups = build_setups(cfg)
        result = build_fig567_quality(setups[0], cfg, seed=0)
        assert result.cells["OpenAPI"].l1_mean < 1e-6
