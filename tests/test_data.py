"""Tests for the data package: container, splits, generators, registry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Dataset,
    available_datasets,
    load_dataset,
    make_blobs,
    make_synthetic_digits,
    make_synthetic_fashion,
    train_test_split,
)
from repro.data.digits import DIGIT_CLASS_NAMES, digit_strokes
from repro.data.fashion import FASHION_CLASS_NAMES, garment_polygons
from repro.exceptions import ValidationError


class TestDataset:
    def test_basic_properties(self, blobs3):
        assert blobs3.n_samples == 300
        assert blobs3.n_features == 6
        assert blobs3.n_classes == 3
        assert len(blobs3) == 300

    def test_row_label_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            Dataset(X=np.ones((3, 2)), y=np.array([0, 1]))

    def test_image_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            Dataset(X=np.ones((2, 5)), y=np.array([0, 1]), image_shape=(2, 2))

    def test_class_names_too_few_rejected(self):
        with pytest.raises(ValidationError):
            Dataset(X=np.ones((2, 2)), y=np.array([0, 1]), class_names=("only",))

    def test_class_name_fallback(self, blobs3):
        assert blobs3.class_name(0) == "blob-0"
        assert blobs3.class_name(99) == "class-99"

    def test_subset_and_of_class(self, blobs3):
        sub = blobs3.of_class(1)
        assert np.all(sub.y == 1)
        assert sub.n_samples > 0

    def test_sample_without_replacement(self, blobs3):
        s = blobs3.sample(50, seed=0)
        assert s.n_samples == 50
        with pytest.raises(ValidationError):
            blobs3.sample(10_000)

    def test_shuffled_preserves_pairs(self, blobs3):
        sh = blobs3.shuffled(seed=1)
        # Same multiset of labels, same rows (possibly reordered).
        assert sorted(sh.y.tolist()) == sorted(blobs3.y.tolist())
        assert sh.X.sum() == pytest.approx(blobs3.X.sum())

    def test_normalized_range(self):
        ds = Dataset(X=np.array([[0.0, 10.0], [5.0, 20.0]]), y=np.array([0, 1]))
        norm = ds.normalized()
        assert norm.X.min() == 0.0
        assert norm.X.max() == 1.0

    def test_image_round_trip(self):
        ds = make_synthetic_digits(4, size=8, seed=0)
        img = ds.image(0)
        assert img.shape == (8, 8)
        np.testing.assert_array_equal(img.ravel(), ds.X[0])

    def test_image_on_non_image_rejected(self, blobs3):
        with pytest.raises(ValidationError):
            blobs3.image(0)

    def test_class_average_image(self):
        ds = make_synthetic_digits(20, size=8, seed=0)
        avg = ds.class_average_image(0)
        assert avg.shape == (8, 8)
        assert 0.0 <= avg.min() and avg.max() <= 1.0

    def test_nearest_neighbor_excludes_self(self, blobs3):
        nn = blobs3.nearest_neighbor(0)
        assert nn != 0
        assert 0 <= nn < blobs3.n_samples

    def test_nearest_neighbor_is_closest(self):
        X = np.array([[0.0], [1.0], [0.1], [5.0]])
        ds = Dataset(X=X, y=np.array([0, 0, 0, 1]))
        assert ds.nearest_neighbor(0) == 2


class TestTrainTestSplit:
    def test_sizes_and_disjointness(self, blobs3):
        train, test = train_test_split(blobs3, test_fraction=0.25, seed=0)
        assert train.n_samples + test.n_samples == blobs3.n_samples
        assert test.n_samples == pytest.approx(75, abs=5)

    def test_stratified_keeps_all_classes(self, blobs3):
        _, test = train_test_split(blobs3, test_fraction=0.1, seed=0)
        assert set(test.y.tolist()) == {0, 1, 2}

    def test_unstratified(self, blobs3):
        train, test = train_test_split(
            blobs3, test_fraction=0.2, seed=0, stratify=False
        )
        assert train.n_samples + test.n_samples == blobs3.n_samples

    def test_bad_fraction_rejected(self, blobs3):
        for frac in (0.0, 1.0, -0.5):
            with pytest.raises(ValidationError):
                train_test_split(blobs3, test_fraction=frac)


class TestMakeBlobs:
    def test_shapes_and_box(self):
        ds = make_blobs(60, n_features=4, n_classes=3, seed=0)
        assert ds.X.shape == (60, 4)
        assert ds.X.min() >= 0.0 and ds.X.max() <= 1.0
        assert ds.n_classes == 3

    def test_balanced_classes(self):
        ds = make_blobs(90, n_classes=3, seed=0)
        counts = np.bincount(ds.y)
        assert np.all(counts == 30)

    def test_custom_box(self):
        ds = make_blobs(30, box=(-1.0, 2.0), seed=0)
        assert ds.X.min() >= -1.0 and ds.X.max() <= 2.0

    def test_separable_with_high_separation(self):
        from repro.models import SoftmaxRegression

        ds = make_blobs(150, n_features=5, n_classes=3, separation=5.0, seed=1)
        clf = SoftmaxRegression(seed=1).fit(ds.X, ds.y)
        assert clf.accuracy(ds.X, ds.y) > 0.95

    def test_invalid_args_rejected(self):
        with pytest.raises(ValidationError):
            make_blobs(2, n_classes=3)
        with pytest.raises(ValidationError):
            make_blobs(10, n_features=0)
        with pytest.raises(ValidationError):
            make_blobs(10, cluster_std=0)
        with pytest.raises(ValidationError):
            make_blobs(10, box=(1.0, 1.0))


@pytest.mark.parametrize("maker", [make_synthetic_digits, make_synthetic_fashion])
class TestImageGenerators:
    def test_shapes_range_balance(self, maker):
        ds = maker(40, size=10, seed=0)
        assert ds.X.shape == (40, 100)
        assert ds.image_shape == (10, 10)
        assert ds.X.min() >= 0.0 and ds.X.max() <= 1.0
        counts = np.bincount(ds.y, minlength=10)
        assert counts.max() - counts.min() <= 1

    def test_reproducible(self, maker):
        a = maker(10, size=8, seed=7)
        b = maker(10, size=8, seed=7)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_class_subset(self, maker):
        ds = maker(12, size=8, classes=(0, 3), seed=0)
        assert ds.n_classes == 2
        assert set(ds.y.tolist()) == {0, 1}

    def test_images_nonempty(self, maker):
        ds = maker(10, size=12, noise=0.0, seed=0)
        # Every rendered image must contain some ink.
        assert np.all(ds.X.sum(axis=1) > 1.0)

    def test_distinct_classes_have_distinct_prototypes(self, maker):
        ds = maker(40, size=12, noise=0.0, jitter=False, seed=0)
        means = np.vstack(
            [ds.X[ds.y == c].mean(axis=0) for c in range(ds.n_classes)]
        )
        dists = np.linalg.norm(means[:, None, :] - means[None, :, :], axis=2)
        off_diag = dists[~np.eye(10, dtype=bool)]
        assert off_diag.min() > 0.5

    def test_invalid_args(self, maker):
        with pytest.raises(ValidationError):
            maker(0)
        with pytest.raises(ValidationError):
            maker(5, classes=(11,))

    def test_learnable(self, maker):
        from repro.models import SoftmaxRegression

        ds = maker(200, size=8, seed=3)
        clf = SoftmaxRegression(max_iter=300, seed=3).fit(ds.X, ds.y)
        assert clf.accuracy(ds.X, ds.y) > 0.9


class TestStrokeAndPolygonDefinitions:
    def test_all_digits_defined(self):
        for d in range(10):
            strokes = digit_strokes(d)
            assert strokes and all(s.shape[1] == 2 for s in strokes)

    def test_all_garments_defined(self):
        for c in range(10):
            polys = garment_polygons(c)
            assert polys and all(p.shape[0] >= 3 for p in polys)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            digit_strokes(10)
        with pytest.raises(ValidationError):
            garment_polygons(-1)

    def test_class_name_tuples(self):
        assert len(DIGIT_CLASS_NAMES) == 10
        assert len(FASHION_CLASS_NAMES) == 10
        assert FASHION_CLASS_NAMES[9] == "ankle-boot"


class TestRegistry:
    def test_available_contains_aliases(self):
        names = available_datasets()
        assert "mnist" in names and "fmnist" in names
        assert "synthetic-digits" in names

    def test_aliases_resolve(self):
        ds = load_dataset("mnist", 10, size=8, seed=0)
        assert ds.name == "synthetic-digits"
        ds = load_dataset("FMNIST", 10, size=8, seed=0)
        assert ds.name == "synthetic-fashion"

    def test_blobs_kwargs_forwarded(self):
        ds = load_dataset("blobs", 30, n_features=7, seed=0)
        assert ds.n_features == 7

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError):
            load_dataset("imagenet", 10)


@settings(max_examples=10, deadline=None)
@given(size=st.integers(6, 16), seed=st.integers(0, 100))
def test_property_digit_pixels_in_unit_range(size, seed):
    ds = make_synthetic_digits(5, size=size, seed=seed)
    assert ds.X.min() >= 0.0 and ds.X.max() <= 1.0
    assert ds.X.shape == (5, size * size)
