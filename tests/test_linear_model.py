"""Tests for SoftmaxRegression and the PLM base interface on it."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_blobs
from repro.exceptions import NotFittedError, ValidationError
from repro.models import SoftmaxRegression
from repro.models.base import LocalLinearClassifier


class TestFitting:
    def test_reaches_high_accuracy_on_separable_data(self, blobs3, linear_model):
        assert linear_model.accuracy(blobs3.X, blobs3.y) > 0.95

    def test_loss_history_decreases(self, linear_model):
        losses = linear_model.loss_history_
        assert losses[-1] < losses[0]

    def test_l1_produces_sparsity(self):
        ds = make_blobs(200, n_features=10, n_classes=3, seed=4)
        dense = SoftmaxRegression(l1=0.0, seed=4).fit(ds.X, ds.y)
        sparse = SoftmaxRegression(l1=5e-2, seed=4).fit(ds.X, ds.y)
        assert sparse.sparsity() > dense.sparsity()
        assert sparse.sparsity() >= 0.1

    def test_extra_classes_allowed(self, blobs3):
        clf = SoftmaxRegression(max_iter=50, seed=0).fit(
            blobs3.X, blobs3.y, n_classes=5
        )
        assert clf.n_classes == 5
        assert clf.predict_proba(blobs3.X[:3]).shape == (3, 5)

    def test_labels_exceeding_classes_rejected(self, blobs3):
        with pytest.raises(ValidationError):
            SoftmaxRegression().fit(blobs3.X, blobs3.y, n_classes=2)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            SoftmaxRegression().fit(np.empty((0, 3)), np.empty(0, dtype=int))

    def test_mismatched_rows_rejected(self, blobs3):
        with pytest.raises(ValidationError):
            SoftmaxRegression().fit(blobs3.X, blobs3.y[:-1])

    def test_invalid_hyperparams_rejected(self):
        with pytest.raises(ValidationError):
            SoftmaxRegression(l1=-1.0)
        with pytest.raises(ValidationError):
            SoftmaxRegression(learning_rate=0.0)
        with pytest.raises(ValidationError):
            SoftmaxRegression(max_iter=0)

    def test_reproducible_with_seed(self, blobs3):
        a = SoftmaxRegression(max_iter=50, seed=9).fit(blobs3.X, blobs3.y)
        b = SoftmaxRegression(max_iter=50, seed=9).fit(blobs3.X, blobs3.y)
        np.testing.assert_array_equal(a.weights, b.weights)


class TestPrediction:
    def test_proba_rows_sum_to_one(self, linear_model, blobs3):
        probs = linear_model.predict_proba(blobs3.X[:10])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_single_instance_shapes(self, linear_model, blobs3):
        x = blobs3.X[0]
        assert linear_model.decision_logits(x).shape == (3,)
        assert linear_model.predict_proba(x).shape == (3,)

    def test_predict_matches_argmax(self, linear_model, blobs3):
        probs = linear_model.predict_proba(blobs3.X[:20])
        np.testing.assert_array_equal(
            linear_model.predict(blobs3.X[:20]), np.argmax(probs, axis=1)
        )

    def test_unfitted_raises(self):
        clf = SoftmaxRegression()
        with pytest.raises(NotFittedError):
            clf.predict(np.ones((1, 3)))
        with pytest.raises(NotFittedError):
            _ = clf.weights


class TestPLMInterface:
    def test_single_region(self, linear_model, blobs3):
        ids = {linear_model.region_id(x) for x in blobs3.X[:20]}
        assert len(ids) == 1

    def test_local_params_reproduce_logits(self, linear_model, blobs3):
        x = blobs3.X[3]
        local = linear_model.local_linear_params(x)
        np.testing.assert_allclose(
            local.logits(x), linear_model.decision_logits(x), atol=1e-12
        )

    def test_input_gradient_logit_is_weight_column(self, linear_model, blobs3):
        x = blobs3.X[0]
        for c in range(3):
            np.testing.assert_allclose(
                linear_model.input_gradient(x, c),
                linear_model.weights[:, c],
                atol=1e-12,
            )

    def test_input_gradient_proba_matches_finite_differences(
        self, linear_model, blobs3
    ):
        x = blobs3.X[1]
        c = 1
        grad = linear_model.input_gradient(x, c, of="proba")
        eps = 1e-6
        for i in range(x.shape[0]):
            bumped = x.copy()
            bumped[i] += eps
            numeric = (
                linear_model.predict_proba(bumped)[c]
                - linear_model.predict_proba(x)[c]
            ) / eps
            assert grad[i] == pytest.approx(numeric, abs=1e-5)

    def test_input_gradient_validations(self, linear_model, blobs3):
        x = blobs3.X[0]
        with pytest.raises(ValidationError):
            linear_model.input_gradient(x, 99)
        with pytest.raises(ValidationError):
            linear_model.input_gradient(x, 0, of="nonsense")

    def test_wrong_instance_shape_rejected(self, linear_model):
        with pytest.raises(ValidationError):
            linear_model.region_id(np.ones(4))


class TestSetParameters:
    def test_round_trip(self):
        W = np.arange(6, dtype=float).reshape(3, 2)
        b = np.array([0.5, -0.5])
        clf = SoftmaxRegression().set_parameters(W, b)
        assert clf.n_features == 3 and clf.n_classes == 2
        np.testing.assert_array_equal(clf.weights, W)
        np.testing.assert_array_equal(clf.bias, b)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            SoftmaxRegression().set_parameters(np.ones((3, 2)), np.ones(3))

    def test_copies_inputs(self):
        W = np.ones((2, 2))
        clf = SoftmaxRegression().set_parameters(W, np.zeros(2))
        W[0, 0] = 99.0
        assert clf.weights[0, 0] == 1.0


class TestLocalLinearClassifier:
    def test_validates_shapes(self):
        with pytest.raises(ValidationError):
            LocalLinearClassifier(weights=np.ones((2, 3)), bias=np.ones(2))

    def test_predict_proba(self):
        llc = LocalLinearClassifier(weights=np.eye(2), bias=np.zeros(2))
        probs = llc.predict_proba(np.array([10.0, 0.0]))
        assert probs[0] > 0.99

    def test_properties(self):
        llc = LocalLinearClassifier(
            weights=np.ones((4, 2)), bias=np.zeros(2), region_id="r1"
        )
        assert llc.n_features == 4
        assert llc.n_classes == 2
        assert llc.region_id == "r1"
