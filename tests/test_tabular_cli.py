"""Tests for the credit-scoring dataset, the experiment runner and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import (
    CREDIT_CLASS_NAMES,
    CREDIT_FEATURE_NAMES,
    load_dataset,
    make_credit_scoring,
)
from repro.data.tabular import _creditworthiness
from repro.eval.runner import (
    EXPERIMENT_IDS,
    ExperimentReport,
    resolve_config,
    run_experiments,
)
from repro.exceptions import ValidationError


class TestCreditScoring:
    def test_shapes_and_names(self):
        ds = make_credit_scoring(200, seed=0)
        assert ds.X.shape == (200, len(CREDIT_FEATURE_NAMES))
        assert ds.class_names == CREDIT_CLASS_NAMES
        assert ds.X.min() >= 0.0 and ds.X.max() <= 1.0

    def test_all_classes_present(self):
        ds = make_credit_scoring(300, seed=1)
        assert set(ds.y.tolist()) == {0, 1, 2}

    def test_class_imbalance_matches_cutoffs(self):
        ds = make_credit_scoring(1000, label_noise=0.0, seed=2)
        counts = np.bincount(ds.y)
        # 30% deny / 30% review / 40% approve by construction.
        assert counts[0] == pytest.approx(300, abs=20)
        assert counts[2] == pytest.approx(400, abs=20)

    def test_reproducible(self):
        a = make_credit_scoring(100, seed=5)
        b = make_credit_scoring(100, seed=5)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_label_noise_flips_labels(self):
        clean = make_credit_scoring(500, label_noise=0.0, seed=3)
        noisy = make_credit_scoring(500, label_noise=0.3, seed=3)
        assert (clean.y != noisy.y).mean() > 0.1

    def test_learnable_by_plnn(self):
        from repro.models import ReLUNetwork, TrainingConfig, train_network

        ds = make_credit_scoring(800, seed=4)
        net = ReLUNetwork([ds.n_features, 24, 3], seed=4)
        report = train_network(
            net, ds.X, ds.y,
            TrainingConfig(epochs=120, learning_rate=3e-3, seed=4),
        )
        assert report.final_train_accuracy > 0.85

    def test_ground_truth_is_piecewise(self):
        """The secured-loan regime changes collateral's marginal effect."""
        base = np.full((1, 10), 0.5)
        collateral_idx = CREDIT_FEATURE_NAMES.index("collateral")

        def marginal(at):
            lo = base.copy()
            hi = base.copy()
            lo[0, collateral_idx] = at - 0.01
            hi[0, collateral_idx] = at + 0.01
            return float(
                (_creditworthiness(hi) - _creditworthiness(lo))[0]
            ) / 0.02

        assert marginal(0.8) > marginal(0.2) + 0.5

    def test_registry_integration(self):
        ds = load_dataset("credit-scoring", 50, seed=0)
        assert ds.name == "credit-scoring"

    def test_validations(self):
        with pytest.raises(ValidationError):
            make_credit_scoring(5)
        with pytest.raises(ValidationError):
            make_credit_scoring(100, label_noise=1.0)


class TestRunner:
    def test_resolve_config(self):
        assert resolve_config("test").n_features == 36
        assert resolve_config("paper").n_features == 784
        with pytest.raises(ValidationError):
            resolve_config("galactic")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValidationError):
            run_experiments(["fig99"], scale="test")

    def test_single_experiment(self):
        cfg = resolve_config("test").scaled(
            datasets=("synthetic-digits",), models=("lmt",)
        )
        report = run_experiments(["table1"], config=cfg)
        assert isinstance(report, ExperimentReport)
        assert "table1" in report.sections
        assert "LMT" in report.sections["table1"]
        assert "table1" in report.as_text()

    def test_all_expands(self):
        cfg = resolve_config("test").scaled(
            datasets=("synthetic-digits",),
            models=("lmt",),
            n_interpret=2,
            h_grid=(1e-4,),
        )
        report = run_experiments(["all"], config=cfg)
        assert set(report.sections) == set(EXPERIMENT_IDS)


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "table1", "--scale", "test"])
        assert args.command == "run" and args.ids == ["table1"]
        args = parser.parse_args(["interpret", "--dataset", "blobs"])
        assert args.command == "interpret"
        args = parser.parse_args(["list"])
        assert args.command == "list"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "credit-scoring" in out
        assert "scale paper" in out

    def test_run_command_writes_output(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        code = main(["run", "table1", "--scale", "test", "--output", str(out_file)])
        assert code == 0
        assert out_file.exists()
        assert "table1" in out_file.read_text()

    def test_interpret_command(self, capsys):
        code = main(["interpret", "--dataset", "blobs", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "certified=True" in out
        assert "verification PASS" in out

    def test_interpret_bad_instance(self, capsys):
        code = main([
            "interpret", "--dataset", "blobs", "--instance", "100000"
        ])
        assert code == 2


class TestServeFlagValidation:
    """Regression: ``serve`` used to silently accept contradictory flag
    combinations (``--ttl-s`` under LRU eviction was ignored, warm-start
    state was discarded at exit, transport knobs without ``--broker`` did
    nothing).  Every such combination must exit 2 with a clear error."""

    def run_serve(self, capsys, *flags: str) -> tuple[int, str]:
        code = main(["serve", *flags])
        return code, capsys.readouterr().err

    def test_ttl_s_requires_ttl_eviction(self, capsys):
        code, err = self.run_serve(capsys, "--ttl-s", "30")
        assert code == 2
        assert "--ttl-s" in err and "--eviction ttl" in err

    def test_ttl_eviction_requires_ttl_s(self, capsys):
        code, err = self.run_serve(capsys, "--eviction", "ttl")
        assert code == 2
        assert "--ttl-s" in err

    def test_nonpositive_ttl_rejected(self, capsys):
        code, err = self.run_serve(
            capsys, "--eviction", "ttl", "--ttl-s", "0"
        )
        assert code == 2
        assert "--ttl-s" in err

    def test_warm_start_requires_snapshot(self, capsys):
        code, err = self.run_serve(capsys, "--warm-start", "regions.npz")
        assert code == 2
        assert "--warm-start" in err and "--snapshot" in err

    def test_no_cache_conflicts_with_snapshot(self, capsys):
        code, err = self.run_serve(
            capsys, "--no-cache", "--snapshot", "regions.npz"
        )
        assert code == 2
        assert "--no-cache" in err

    def test_transport_flags_require_broker(self, capsys):
        for flags in (
            ["--latency-ms", "5"],
            ["--failure-rate", "0.1"],
            ["--rate-limit", "100"],
        ):
            code, err = self.run_serve(capsys, *flags)
            assert code == 2
            assert "--broker" in err

    def test_range_error_reported_even_without_broker(self, capsys):
        """An out-of-range transport value must surface the range error
        in one shot, not hide behind the requires---broker message."""
        code, err = self.run_serve(capsys, "--latency-ms", "-5")
        assert code == 2
        assert "must be >= 0" in err

    def test_bad_failure_rate_rejected(self, capsys):
        code, err = self.run_serve(
            capsys, "--broker", "--failure-rate", "1.5"
        )
        assert code == 2
        assert "--failure-rate" in err

    def test_negative_retries_rejected(self, capsys):
        code, err = self.run_serve(capsys, "--broker", "--retries", "-1")
        assert code == 2
        assert "--retries" in err

    def test_l2_flags_require_l2_dir(self, capsys):
        for flags in (
            ["--l2-max-bytes", "1048576"],
            ["--compact-ratio", "0.7"],
        ):
            code, err = self.run_serve(capsys, *flags)
            assert code == 2
            assert "--l2-dir" in err

    def test_l2_dir_conflicts_with_no_cache(self, capsys):
        code, err = self.run_serve(capsys, "--no-cache", "--l2-dir", "l2")
        assert code == 2
        assert "--no-cache" in err and "--l2-dir" in err

    def test_l2_range_errors_reported(self, capsys):
        code, err = self.run_serve(
            capsys, "--l2-dir", "l2", "--l2-max-bytes", "0"
        )
        assert code == 2
        assert "--l2-max-bytes" in err
        code, err = self.run_serve(
            capsys, "--l2-dir", "l2", "--compact-ratio", "1.5"
        )
        assert code == 2
        assert "--compact-ratio" in err

    def test_index_bits_requires_region_index(self, capsys):
        code, err = self.run_serve(capsys, "--index-bits", "8")
        assert code == 2
        assert "--index-bits" in err and "--region-index" in err

    def test_region_index_conflicts_with_no_cache(self, capsys):
        code, err = self.run_serve(capsys, "--no-cache", "--region-index")
        assert code == 2
        assert "--no-cache" in err and "--region-index" in err

    def test_index_bits_range_enforced(self, capsys):
        for bits in ("0", "65"):
            code, err = self.run_serve(
                capsys, "--region-index", "--index-bits", bits
            )
            assert code == 2
            assert "--index-bits" in err and "[1, 64]" in err

    def test_coherent_index_flags_pass_validation(self):
        from repro.cli import _validate_serve_flags

        args = build_parser().parse_args(
            ["serve", "--region-index", "--index-bits", "12",
             "--shards", "2", "--l2-dir", "l2"]
        )
        assert _validate_serve_flags(args) is None

    def test_index_flag_defaults_mirror_serving_constants(self):
        """The parser keeps literal copies of the serving-layer index
        constants (to stay import-light); they must not drift."""
        from repro.cli import _INDEX_FLAG_DEFAULTS, _MAX_INDEX_BITS
        from repro.serving.index import DEFAULT_INDEX_BITS, MAX_INDEX_BITS

        assert _INDEX_FLAG_DEFAULTS["index_bits"] == DEFAULT_INDEX_BITS
        assert _MAX_INDEX_BITS == MAX_INDEX_BITS

    def test_warm_start_allowed_with_l2_dir_alone(self):
        """The disk tier persists updates itself, so --warm-start no
        longer demands --snapshot when --l2-dir is given."""
        from repro.cli import _validate_serve_flags

        args = build_parser().parse_args(
            ["serve", "--warm-start", "r.npz", "--l2-dir", "l2"]
        )
        assert _validate_serve_flags(args) is None

    def test_coherent_flags_pass_validation(self):
        from repro.cli import _validate_serve_flags

        args = build_parser().parse_args(
            ["serve", "--eviction", "ttl", "--ttl-s", "30",
             "--warm-start", "r.npz", "--snapshot", "r.npz",
             "--broker", "--latency-ms", "2", "--failure-rate", "0.05"]
        )
        assert _validate_serve_flags(args) is None

    def test_coherent_l2_flags_pass_validation(self):
        from repro.cli import _validate_serve_flags

        args = build_parser().parse_args(
            ["serve", "--l2-dir", "l2", "--l2-max-bytes", "1048576",
             "--compact-ratio", "0.6", "--shards", "4"]
        )
        assert _validate_serve_flags(args) is None


class TestGatewayFlagValidation:
    """The multi-process gateway flags must be coherent before any
    worker process is spawned: every contradictory combination exits 2
    naming the offending flag, never silently ignores it."""

    def run_serve(self, capsys, *flags: str) -> tuple[int, str]:
        code = main(["serve", *flags])
        return code, capsys.readouterr().err

    def test_gateway_knobs_require_gateway(self, capsys):
        for flags in (
            ["--gateway-workers", "4"],
            ["--port", "8080"],
            ["--queue-capacity", "8"],
            ["--drain-deadline-s", "5"],
            ["--no-supervise"],
            ["--rolling-restart"],
        ):
            code, err = self.run_serve(capsys, *flags)
            assert code == 2
            assert "--gateway" in err and "silently ignored" in err

    def test_queue_capacity_range(self, capsys):
        code, err = self.run_serve(
            capsys, "--gateway", "--l2-dir", "l2", "--queue-capacity", "0"
        )
        assert code == 2
        assert "--queue-capacity" in err and ">= 1" in err

    def test_drain_deadline_range(self, capsys):
        code, err = self.run_serve(
            capsys, "--gateway", "--l2-dir", "l2",
            "--drain-deadline-s", "0",
        )
        assert code == 2
        assert "--drain-deadline-s" in err and "> 0" in err

    def test_rolling_restart_contradicts_no_supervise(self, capsys):
        code, err = self.run_serve(
            capsys, "--gateway", "--l2-dir", "l2",
            "--rolling-restart", "--no-supervise",
        )
        assert code == 2
        assert "--rolling-restart" in err and "--no-supervise" in err

    def test_gateway_requires_l2_dir(self, capsys):
        code, err = self.run_serve(capsys, "--gateway")
        assert code == 2
        assert "--l2-dir" in err and "single writer" in err

    def test_gateway_worker_count_range(self, capsys):
        code, err = self.run_serve(
            capsys, "--gateway", "--l2-dir", "l2", "--gateway-workers", "0"
        )
        assert code == 2
        assert "--gateway-workers" in err and ">= 1" in err

    def test_port_range_enforced(self, capsys):
        code, err = self.run_serve(
            capsys, "--gateway", "--l2-dir", "l2", "--port", "70000"
        )
        assert code == 2
        assert "--port" in err and "[0, 65535]" in err

    def test_gateway_conflicts_with_in_process_tiers(self, capsys):
        base = ["--gateway", "--l2-dir", "l2"]
        for flags, named in (
            (["--no-cache"], "--no-cache"),
            (["--broker"], "--broker"),
            (["--shards", "2"], "--gateway-workers"),
            (["--workers", "2"], "--gateway-workers"),
            (["--snapshot", "r.npz"], "--snapshot"),
            (["--warm-start", "r.npz"], "--warm-start"),
            (["--eviction", "ttl", "--ttl-s", "30"], "--eviction"),
            (["--l2-max-bytes", "1048576"], "--l2-max-bytes"),
            (["--compact-ratio", "0.6"], "--compact-ratio"),
        ):
            code, err = self.run_serve(capsys, *base, *flags)
            assert code == 2, flags
            assert named in err, (flags, err)

    def test_coherent_gateway_flags_pass_validation(self):
        from repro.cli import _validate_serve_flags

        args = build_parser().parse_args(
            ["serve", "--gateway", "--l2-dir", "l2",
             "--gateway-workers", "4", "--port", "8080",
             "--queue-capacity", "16", "--drain-deadline-s", "5",
             "--rolling-restart",
             "--region-index", "--index-bits", "12"]
        )
        assert _validate_serve_flags(args) is None

    def test_gateway_flag_defaults_pinned(self):
        """The validator detects non-default gateway knobs against this
        table; the parser defaults must not drift from it."""
        from repro.cli import _GATEWAY_FLAG_DEFAULTS

        parser = build_parser()
        args = parser.parse_args(["serve"])
        for attr, default in _GATEWAY_FLAG_DEFAULTS.items():
            assert getattr(args, attr) == default
