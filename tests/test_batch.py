"""Tests for the lock-step batch interpreter (repro.core.batch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import NoisyResponse, PredictionAPI
from repro.core import BatchOpenAPIInterpreter, OpenAPIInterpreter
from repro.exceptions import ValidationError
from repro.models.openbox import ground_truth_decision_features


class TestBatchExactness:
    def test_exact_on_plnn_batch(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        batch = BatchOpenAPIInterpreter(seed=0)
        X = blobs3.X[:6]
        result = batch.interpret_batch(api, X)
        assert result.n_failed == 0
        for x0, interp in zip(X, result.interpretations):
            gt = ground_truth_decision_features(
                relu_model, x0, interp.target_class
            )
            assert interp.all_certified
            np.testing.assert_allclose(interp.decision_features, gt, atol=1e-8)

    def test_exact_on_lmt_batch(self, lmt_model, xor_dataset):
        api = PredictionAPI(lmt_model)
        result = BatchOpenAPIInterpreter(seed=1).interpret_batch(
            api, xor_dataset.X[:5]
        )
        assert result.n_failed == 0
        for x0, interp in zip(xor_dataset.X[:5], result.interpretations):
            gt = ground_truth_decision_features(
                lmt_model, x0, interp.target_class
            )
            np.testing.assert_allclose(interp.decision_features, gt, atol=1e-8)

    def test_explicit_classes(self, linear_model, blobs3):
        api = PredictionAPI(linear_model)
        classes = np.array([0, 1, 2])
        result = BatchOpenAPIInterpreter(seed=2).interpret_batch(
            api, blobs3.X[:3], classes
        )
        assert [i.target_class for i in result.interpretations] == [0, 1, 2]


class TestRoundTripSavings:
    def test_fewer_round_trips_than_sequential(self, relu_model, blobs3):
        X = blobs3.X[:8]

        seq_api = PredictionAPI(relu_model)
        sequential = OpenAPIInterpreter(seed=3)
        seq_iters = []
        for x0 in X:
            seq_iters.append(sequential.interpret(seq_api, x0).iterations)

        batch_api = PredictionAPI(relu_model)
        result = BatchOpenAPIInterpreter(seed=3).interpret_batch(batch_api, X)

        # Sequential: one trip for each x0 plus one per iteration.
        assert seq_api.request_count == len(X) + sum(seq_iters)
        # Batch: one trip for all x0 plus one per lock-step round.
        assert batch_api.request_count == 1 + result.rounds
        assert batch_api.request_count < seq_api.request_count

    def test_query_totals_match_per_instance_formula(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        X = blobs3.X[:4]
        d = X.shape[1]
        result = BatchOpenAPIInterpreter(seed=4).interpret_batch(api, X)
        # Lock-step keeps sampling for unfinished instances only; total
        # queries = n (for x0s) + (d+1) * sum of per-instance iterations.
        total_iters = sum(i.iterations for i in result.interpretations)
        assert result.n_queries == len(X) + (d + 1) * total_iters

    def test_rounds_equal_max_iterations_across_batch(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        result = BatchOpenAPIInterpreter(seed=5).interpret_batch(
            api, blobs3.X[:6]
        )
        assert result.rounds == max(
            i.iterations for i in result.interpretations
        )


class TestBatchFailureHandling:
    def test_noisy_api_yields_none_entries(self, relu_model, blobs3):
        api = PredictionAPI(relu_model, transform=NoisyResponse(0.02, seed=0))
        result = BatchOpenAPIInterpreter(
            seed=6, max_iterations=4
        ).interpret_batch(api, blobs3.X[:3])
        assert result.n_failed == 3
        assert result.interpretations == [None, None, None]

    def test_mixed_instances_independent(self, relu_model, blobs3):
        """One hard instance must not block the others."""
        api = PredictionAPI(relu_model)
        # Give instance budgets that certify everything comfortably.
        result = BatchOpenAPIInterpreter(seed=7).interpret_batch(
            api, blobs3.X[:5]
        )
        iters = [i.iterations for i in result.interpretations]
        assert min(iters) >= 1
        # Lock-step must not inflate the fast instances' iteration counts.
        assert min(iters) < max(iters) or len(set(iters)) == 1


class TestBatchValidation:
    def test_shape_checks(self, linear_api, blobs3):
        batch = BatchOpenAPIInterpreter(seed=0)
        with pytest.raises(ValidationError):
            batch.interpret_batch(linear_api, np.ones((2, 99)))
        with pytest.raises(ValidationError):
            batch.interpret_batch(linear_api, np.empty((0, 6)))
        with pytest.raises(ValidationError):
            batch.interpret_batch(linear_api, blobs3.X[:2], classes=np.array([0]))
        with pytest.raises(ValidationError):
            batch.interpret_batch(
                linear_api, blobs3.X[:2], classes=np.array([0, 99])
            )

    def test_invalid_hyperparams(self):
        with pytest.raises(ValidationError):
            BatchOpenAPIInterpreter(max_iterations=0)
        with pytest.raises(ValidationError):
            BatchOpenAPIInterpreter(shrink=1.5)
