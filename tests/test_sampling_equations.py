"""Tests for hypercube sampling (Lemma 1) and the equation systems."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.equations import (
    build_pair_system,
    log_odds,
    pairwise_log_odds_targets,
    solve_all_pairs,
)
from repro.core.sampling import HypercubeSampler, sample_hypercube
from repro.core.types import Attribution
from repro.exceptions import ValidationError
from repro.utils.linalg import affine_design_matrix, is_full_rank


class TestSampleHypercube:
    def test_inside_cube(self):
        rng = np.random.default_rng(0)
        center = np.array([0.5, -1.0, 2.0])
        pts = sample_hypercube(center, 0.25, 100, rng)
        assert pts.shape == (100, 3)
        assert np.all(np.abs(pts - center) <= 0.25)

    def test_clip_box(self):
        rng = np.random.default_rng(1)
        pts = sample_hypercube(np.array([0.0, 1.0]), 0.5, 50, rng, clip_box=(0, 1))
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_validations(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValidationError):
            sample_hypercube(np.zeros(2), 0.0, 5, rng)
        with pytest.raises(ValidationError):
            sample_hypercube(np.zeros(2), 1.0, 0, rng)
        with pytest.raises(ValidationError):
            sample_hypercube(np.zeros(2), 1.0, 5, rng, clip_box=(1.0, 0.0))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), d=st.integers(1, 10))
    def test_property_lemma1_full_rank(self, seed, d):
        """Lemma 1: the (d+1)x(d+1) coefficient matrix is full rank w.p. 1."""
        rng = np.random.default_rng(seed)
        center = rng.normal(size=d)
        pts = sample_hypercube(center, 0.5, d + 1, rng)
        A = affine_design_matrix(pts)
        assert is_full_rank(A)

    def test_sampler_draw(self):
        sampler = HypercubeSampler(seed=0)
        pts = sampler.draw(np.zeros(4), 1.0, 10)
        assert pts.shape == (10, 4)

    def test_sampler_reproducible(self):
        a = HypercubeSampler(seed=3).draw(np.zeros(2), 1.0, 5)
        b = HypercubeSampler(seed=3).draw(np.zeros(2), 1.0, 5)
        np.testing.assert_array_equal(a, b)

    def test_axis_pairs_layout(self):
        sampler = HypercubeSampler(seed=0)
        center = np.array([1.0, 2.0])
        pts = sampler.draw_axis_pairs(center, 0.1)
        assert pts.shape == (4, 2)
        np.testing.assert_allclose(pts[0], [1.1, 2.0])
        np.testing.assert_allclose(pts[1], [0.9, 2.0])
        np.testing.assert_allclose(pts[2], [1.0, 2.1])
        np.testing.assert_allclose(pts[3], [1.0, 1.9])

    def test_axis_pairs_clip_collapse_rejected(self):
        """Regression: clip_box used to silently clip ``x + h e_i`` and
        ``x − h e_i`` onto the same box face, producing duplicate rows
        (a degenerate perturbation set with 0/0 finite differences)."""
        sampler = HypercubeSampler(seed=0, clip_box=(0.0, 1.0))
        # Axis 0 sits 0.2 past the upper face with h=0.1: both ±h points
        # clip to 1.0.  Axis 2 sits below the lower face: both clip to 0.
        center = np.array([1.2, 0.5, -0.3])
        with pytest.raises(ValidationError) as excinfo:
            sampler.draw_axis_pairs(center, 0.1)
        message = str(excinfo.value)
        assert "0, 2" in message
        assert "1," not in message.replace("[0, 2]", "")

    def test_axis_pairs_one_sided_clip_is_fine(self):
        """Clipping only one of the pair keeps the rows distinct."""
        sampler = HypercubeSampler(seed=0, clip_box=(0.0, 1.0))
        pts = sampler.draw_axis_pairs(np.array([0.95, 0.5]), 0.1)
        np.testing.assert_allclose(pts[0], [1.0, 0.5])  # clipped
        np.testing.assert_allclose(pts[1], [0.85, 0.5])
        assert not np.array_equal(pts[0], pts[1])

    def test_axis_pairs_invalid_clip_box_rejected(self):
        sampler = HypercubeSampler(seed=0, clip_box=(1.0, 0.0))
        with pytest.raises(ValidationError):
            sampler.draw_axis_pairs(np.array([0.5, 0.5]), 0.1)


class TestLogOdds:
    def test_single_vector(self):
        y = np.array([0.6, 0.3, 0.1])
        assert log_odds(y, 0, 1) == pytest.approx(np.log(2.0))

    def test_batch(self):
        probs = np.array([[0.5, 0.5], [0.9, 0.1]])
        out = log_odds(probs, 0, 1)
        np.testing.assert_allclose(out, [0.0, np.log(9.0)])

    def test_floor_prevents_infinities(self):
        y = np.array([1.0, 0.0])
        val = log_odds(y, 0, 1, floor=1e-10)
        assert np.isfinite(val)

    def test_validations(self):
        y = np.array([0.5, 0.5])
        with pytest.raises(ValidationError):
            log_odds(y, 0, 0)
        with pytest.raises(ValidationError):
            log_odds(y, 0, 5)
        with pytest.raises(ValidationError):
            log_odds(y, 0, 1, floor=0.0)

    def test_pairwise_targets(self):
        probs = np.array([[0.5, 0.3, 0.2]])
        targets, pairs = pairwise_log_odds_targets(probs, 1)
        assert pairs == [(1, 0), (1, 2)]
        np.testing.assert_allclose(
            targets[0], [np.log(0.3 / 0.5), np.log(0.3 / 0.2)]
        )

    def test_build_pair_system(self):
        pts = np.ones((2, 3))
        probs = np.array([[0.5, 0.5], [0.4, 0.6]])
        out_pts, targets = build_pair_system(pts, probs, 0, 1)
        assert out_pts.shape == (2, 3)
        assert targets.shape == (2,)


class TestSolveAllPairs:
    @staticmethod
    def _linear_setup(seed=0, d=4, C=3, n=None):
        """Exact softmax-linear data: points, probs, and the true (W, b)."""
        rng = np.random.default_rng(seed)
        W = rng.normal(size=(d, C))
        b = rng.normal(size=C)
        n = n if n is not None else d + 2
        pts = rng.uniform(-1, 1, size=(n, d))
        logits = pts @ W + b
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs = exp / exp.sum(axis=1, keepdims=True)
        return pts, probs, W, b

    def test_recovers_core_parameters(self):
        pts, probs, W, b = self._linear_setup()
        sols = solve_all_pairs(pts, probs, 0)
        for (c, cp), sol in sols.items():
            np.testing.assert_allclose(
                sol.result.weights, W[:, c] - W[:, cp], atol=1e-9
            )
            assert sol.result.intercept == pytest.approx(
                float(b[c] - b[cp]), abs=1e-9
            )
            assert sol.certified

    def test_pair_keys_complete(self):
        pts, probs, _, _ = self._linear_setup(C=4)
        sols = solve_all_pairs(pts, probs, 2)
        assert set(sols) == {(2, 0), (2, 1), (2, 3)}

    def test_certificate_fails_for_mixed_regions(self):
        """Mixing rows from two different linear maps must not certify."""
        pts, probs, W, b = self._linear_setup(seed=1)
        pts2, probs2, _, _ = self._linear_setup(seed=2)
        mixed_probs = probs.copy()
        mixed_probs[-1] = probs2[-1]
        sols = solve_all_pairs(pts, mixed_probs, 0)
        assert not all(s.certified for s in sols.values())

    def test_determined_system_not_certified(self):
        pts, probs, _, _ = self._linear_setup(n=5, d=4)
        sols = solve_all_pairs(pts, probs, 0, check_certificate=False)
        assert all(not s.certified for s in sols.values())

    def test_center_improves_nothing_on_easy_data(self):
        pts, probs, W, _ = self._linear_setup(seed=3)
        with_center = solve_all_pairs(pts, probs, 0, center=pts[0])
        without = solve_all_pairs(pts, probs, 0)
        for pair in with_center:
            np.testing.assert_allclose(
                with_center[pair].result.weights,
                without[pair].result.weights,
                atol=1e-8,
            )

    def test_validations(self):
        pts, probs, _, _ = self._linear_setup()
        with pytest.raises(ValidationError):
            solve_all_pairs(pts[:, 0], probs, 0)
        with pytest.raises(ValidationError):
            solve_all_pairs(pts, probs[:-1], 0)
        with pytest.raises(ValidationError):
            solve_all_pairs(pts[:3], probs[:3], 0)  # under-determined
        with pytest.raises(ValidationError):
            solve_all_pairs(pts, probs, 0, center=np.zeros(2))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000), d=st.integers(2, 6), C=st.integers(2, 5))
    def test_property_exact_recovery_single_region(self, seed, d, C):
        """Theorem 2's consistent case: exact recovery with certificates."""
        pts, probs, W, b = self._linear_setup(seed=seed, d=d, C=C)
        sols = solve_all_pairs(pts, probs, 0)
        for (c, cp), sol in sols.items():
            assert sol.certified
            np.testing.assert_allclose(
                sol.result.weights, W[:, c] - W[:, cp], atol=1e-6
            )


class TestAttributionType:
    def test_top_features_ordering(self):
        att = Attribution(values=np.array([0.1, -5.0, 2.0]))
        np.testing.assert_array_equal(att.top_features(2), [1, 2])
        np.testing.assert_array_equal(att.top_features(10), [1, 2, 0])

    def test_top_features_validation(self):
        att = Attribution(values=np.ones(3))
        with pytest.raises(ValidationError):
            att.top_features(0)

    def test_samples_shape_validated(self):
        with pytest.raises(ValidationError):
            Attribution(values=np.ones(3), samples=np.ones((2, 4)))

    def test_values_must_be_1d(self):
        with pytest.raises(ValidationError):
            Attribution(values=np.ones((2, 2)))
