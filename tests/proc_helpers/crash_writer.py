"""A stdin-driven L2 writer process the crash tests can kill at will.

The test process sends one JSON object per line on stdin and reads one
JSON reply per line from stdout.  Ops:

* ``{"op": "append", "sig": N}`` — append the deterministic synthetic
  record keyed by ``N`` (both sides derive identical bytes from the
  signature, so the reader can verify content without any channel but
  the store itself);
* ``{"op": "publish"}`` — persist the tail index (epoch bump);
* ``{"op": "mark_dead", "sig": N}`` / ``{"op": "compact"}`` /
  ``{"op": "sync"}``;
* ``{"op": "arm_pause_before_rename"}`` — the *next* index publish
  writes the tmp file, emits a ``{"event": "before-rename"}`` line and
  then hangs forever — the deterministic SIGKILL window for dying
  mid-publish (tmp written, rename never issued);
* ``{"op": "state"}`` — live signatures + epoch;
* ``{"op": "exit"}`` — clean close.

Run as ``python crash_writer.py --dir DIR`` with ``PYTHONPATH`` carrying
``src``; the writer opens the store with ``exclusive=True`` so the
kernel-released ``flock`` is part of what the kill tests exercise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np


def synthetic_record(sig: int, *, d: int = 4, n_pairs: int = 2) -> tuple:
    """The deterministic record both the writer and the verifying test
    derive from a signature alone."""
    rng = np.random.default_rng(sig)
    pairs = tuple((0, j + 1) for j in range(n_pairs))
    return (
        0,
        pairs,
        rng.normal(size=(n_pairs, d)),
        rng.normal(size=n_pairs),
        rng.normal(size=d),
        rng.normal(size=d),
        float(rng.uniform(0.1, 1.0)),
    )


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--dir", required=True)
    args = parser.parse_args()

    from repro.serving.store import SegmentStore

    armed = {"pause": False}
    real_replace = os.replace

    def replace_with_window(src, dst):
        if armed["pause"] and str(dst).endswith("index.json"):
            print(json.dumps({"event": "before-rename"}), flush=True)
            while True:  # hold the window open until SIGKILL
                time.sleep(60)
        return real_replace(src, dst)

    os.replace = replace_with_window

    store = SegmentStore(args.dir, exclusive=True)
    print(
        json.dumps({"ready": True, "pid": os.getpid(), "epoch": store.epoch}),
        flush=True,
    )
    for line in sys.stdin:
        request = json.loads(line)
        op = request["op"]
        if op == "append":
            appended = store.append(
                request["sig"], *synthetic_record(request["sig"])
            )
            reply = {"ok": True, "appended": bool(appended)}
        elif op == "publish":
            store.persist_index()
            reply = {"ok": True, "epoch": store.epoch}
        elif op == "mark_dead":
            store.mark_dead(request["sig"])
            reply = {"ok": True}
        elif op == "compact":
            reclaimed = store.compact()
            reply = {"ok": True, "reclaimed": reclaimed}
        elif op == "sync":
            store.sync()
            reply = {"ok": True}
        elif op == "arm_pause_before_rename":
            armed["pause"] = True
            reply = {"ok": True}
        elif op == "state":
            reply = {
                "ok": True,
                "live": sorted(store.live_signatures()),
                "epoch": store.epoch,
            }
        elif op == "exit":
            store.close()
            print(json.dumps({"ok": True}), flush=True)
            return 0
        else:
            reply = {"ok": False, "error": f"unknown op {op!r}"}
        print(json.dumps(reply), flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
