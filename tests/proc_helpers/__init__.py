"""Harness for the cross-process serving tests.

Two halves live here:

* **subprocess bodies** (`crash_writer.py`) — scripts run with
  ``sys.executable`` so the tests exercise *real* process boundaries:
  separate mmaps, separate page caches, kernel-released file locks,
  and SIGKILL windows armed at exact points inside store operations
  (the test process imports them only for their deterministic record
  constructors, never for their process state);
* **test-side helpers** (below) — spawning those bodies with a
  ``repro``-importable environment, reading their JSON-line protocol
  under hard deadlines, and the :class:`CrashWriter` handle the crash
  tests drive.

This lives in its own package (not ``conftest.py``) because the full
pytest run collects both ``tests/`` and ``benchmarks/``, each with a
``conftest`` module — a plain ``from conftest import ...`` resolves to
whichever directory hit ``sys.path`` first.
"""

from __future__ import annotations

import json
import os
import select
import subprocess
import sys
import time
from pathlib import Path

#: The model recipe every gateway test process (worker subprocesses and
#: the in-test reference service alike) trains — small enough that a
#: worker is ready in ~1s, deterministic so all of them agree bitwise.
TINY_GATEWAY_KWARGS = dict(
    dataset="blobs", seed=0, train_size=120, epochs=25, hidden=(8,)
)

PROC_HELPERS_DIR = Path(__file__).resolve().parent
_SRC_DIR = PROC_HELPERS_DIR.parents[1] / "src"


def subprocess_env(**extra: str) -> dict:
    """A child-process environment that can import ``repro``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


def read_json_line(proc: subprocess.Popen, timeout_s: float = 30.0) -> dict:
    """One JSON line from ``proc.stdout``, with a hard deadline.

    Uses ``select`` on the raw fd so a wedged child can never hang the
    suite; raises ``TimeoutError`` (with the child's status) instead.
    """
    deadline = time.monotonic() + timeout_s
    fd = proc.stdout.fileno()
    buf = bytearray()
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(
                f"no line from pid {proc.pid} within {timeout_s}s "
                f"(returncode={proc.poll()}, got {bytes(buf)!r})"
            )
        ready, _, _ = select.select([fd], [], [], min(remaining, 0.25))
        if not ready:
            continue
        chunk = os.read(fd, 4096)
        if not chunk:
            raise EOFError(
                f"pid {proc.pid} closed stdout "
                f"(returncode={proc.poll()}, got {bytes(buf)!r})"
            )
        buf.extend(chunk)
        if b"\n" in buf:
            line, _, rest = bytes(buf).partition(b"\n")
            assert not rest, f"unexpected extra output: {rest!r}"
            return json.loads(line)


class CrashWriter:
    """Test-side handle on one ``proc_helpers/crash_writer.py`` process."""

    def __init__(self, directory):
        self.proc = subprocess.Popen(
            [
                sys.executable,
                str(PROC_HELPERS_DIR / "crash_writer.py"),
                "--dir", str(directory),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=subprocess_env(),
        )
        ready = read_json_line(self.proc, timeout_s=60.0)
        assert ready.get("ready"), ready

    def op(self, op: str, *, reply: bool = True, **fields) -> dict | None:
        self.proc.stdin.write(
            (json.dumps({"op": op, **fields}) + "\n").encode()
        )
        self.proc.stdin.flush()
        if not reply:
            return None
        out = read_json_line(self.proc)
        assert out.get("ok"), out
        return out

    def kill_in_window(self, op: str, **fields) -> None:
        """Arm the pause-before-rename window, issue ``op``, wait for
        the window event, then SIGKILL inside it."""
        self.op("arm_pause_before_rename")
        self.op(op, reply=False, **fields)
        event = read_json_line(self.proc)
        assert event.get("event") == "before-rename", event
        self.proc.kill()
        self.proc.wait(timeout=30)

    def close(self) -> None:
        if self.proc.poll() is None:
            try:
                self.op("exit")
                self.proc.wait(timeout=10)
            except Exception:
                self.proc.kill()
        self.proc.wait(timeout=30)
        for stream in (self.proc.stdin, self.proc.stdout, self.proc.stderr):
            if stream is not None:
                stream.close()
