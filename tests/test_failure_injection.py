"""Failure-injection and boundary-condition tests across the stack.

Production libraries earn their keep in the failure paths: budgets running
out mid-interpretation, constrained input domains, truncated API responses,
and callers holding results across failures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PredictionAPI, TruncatedResponse
from repro.core import NaiveInterpreter, OpenAPIInterpreter
from repro.core.types import Attribution
from repro.exceptions import (
    APIBudgetExceededError,
    CertificateError,
    ValidationError,
)
from repro.metrics import flip_features


class TestBudgetExhaustion:
    def test_openapi_budget_exhausted_mid_run(self, relu_model, blobs3):
        """The budget can die inside the shrink loop; the error must
        propagate (not be swallowed into a wrong interpretation)."""
        d = blobs3.n_features
        # Enough for x0 plus one full iteration, not two.
        api = PredictionAPI(relu_model, budget=1 + (d + 1) + 3)
        interpreter = OpenAPIInterpreter(seed=0)
        # Find an instance needing >= 2 iterations under this seed.
        probe_api = PredictionAPI(relu_model)
        needy = None
        for i in range(20):
            interp = OpenAPIInterpreter(seed=0).interpret(probe_api, blobs3.X[i])
            if interp.iterations >= 2:
                needy = blobs3.X[i]
                break
        assert needy is not None
        with pytest.raises(APIBudgetExceededError):
            interpreter.interpret(api, needy)

    def test_budget_not_consumed_by_rejected_batch(self, relu_model, blobs3):
        api = PredictionAPI(relu_model, budget=3)
        with pytest.raises(APIBudgetExceededError):
            api.predict_proba(blobs3.X[:5])
        # A smaller batch still fits.
        api.predict_proba(blobs3.X[:3])
        assert api.query_count == 3

    def test_naive_budget_exact_fit(self, linear_model, blobs3):
        d = blobs3.n_features
        api = PredictionAPI(linear_model, budget=1 + d)
        interp = NaiveInterpreter(1e-3, seed=0).interpret(api, blobs3.X[0])
        assert interp.n_queries == 1 + d  # consumed the whole budget exactly


class TestConstrainedDomains:
    def test_openapi_with_clip_box_stays_exact(self, relu_model, blobs3):
        """Domain-clipped sampling (APIs rejecting out-of-range inputs)
        still certifies for interior instances once the cube shrinks
        inside the box."""
        from repro.models.openbox import ground_truth_decision_features

        api = PredictionAPI(relu_model)
        interior = np.clip(blobs3.X[0], 0.2, 0.8)
        interpreter = OpenAPIInterpreter(seed=0, clip_box=(0.0, 1.0))
        interp = interpreter.interpret(api, interior)
        gt = ground_truth_decision_features(
            relu_model, interior, interp.target_class
        )
        assert interp.all_certified
        np.testing.assert_allclose(interp.decision_features, gt, atol=1e-7)
        assert interp.samples.min() >= 0.0 and interp.samples.max() <= 1.0

    def test_zoo_clip_box(self, linear_api, blobs3):
        from repro.baselines import ZOOInterpreter

        x0 = np.clip(blobs3.X[0], 0.0, 1.0)
        zoo = ZOOInterpreter(linear_api, h=0.5, clip_box=(0.0, 1.0), seed=0)
        att = zoo.explain(x0, c=0)
        assert att.samples.min() >= 0.0 and att.samples.max() <= 1.0


class TestTruncatedResponses:
    def test_openapi_refuses_on_truncated_api(self, relu_model, blobs3):
        """Top-k truncation zeroes classes; the floored log-odds cannot
        satisfy one affine map, so the certificate must refuse."""
        api = PredictionAPI(relu_model, transform=TruncatedResponse(2))
        interpreter = OpenAPIInterpreter(seed=0, max_iterations=6)
        refused = 0
        for i in range(3):
            try:
                interp = interpreter.interpret(api, blobs3.X[i])
            except CertificateError:
                refused += 1
                continue
            # If it certified, the responses were genuinely untruncated
            # (all mass already in 2 classes) — the answer must then be
            # internally consistent.
            assert interp.all_certified
        assert refused >= 1


class TestResultRobustness:
    def test_interpretation_is_immutable_snapshot(self, linear_api, blobs3):
        interp = OpenAPIInterpreter(seed=0).interpret(linear_api, blobs3.X[0])
        with pytest.raises(Exception):
            interp.x0 = np.zeros(6)  # frozen dataclass

    def test_attribution_values_copy_semantics(self):
        raw = np.array([1.0, -2.0, 3.0])
        att = Attribution(values=raw)
        raw[0] = 99.0
        # Attribution normalizes through asarray; mutating the caller's
        # array after construction must not corrupt ordering logic.
        top = att.top_features(3)
        assert top.shape == (3,)

    def test_flip_features_only_touches_targets(self):
        x0 = np.linspace(0.1, 0.9, 5)
        att = Attribution(values=np.array([0.0, 0.0, 5.0, 0.0, -5.0]))
        flipped = flip_features(x0, att, 2)
        untouched = [0, 1, 3]
        np.testing.assert_array_equal(flipped[untouched], x0[untouched])
        assert flipped[2] == 0.0 and flipped[4] == 1.0

    def test_openapi_interpreter_reusable_after_failure(self, relu_model, blobs3):
        """A CertificateError must not poison the interpreter's state."""
        from repro.api import NoisyResponse

        noisy_api = PredictionAPI(relu_model, transform=NoisyResponse(0.05, seed=0))
        clean_api = PredictionAPI(relu_model)
        interpreter = OpenAPIInterpreter(seed=0, max_iterations=30)
        with pytest.raises(CertificateError):
            interpreter.interpret(noisy_api, blobs3.X[0])
        interp = interpreter.interpret(clean_api, blobs3.X[0])
        assert interp.all_certified


class TestCLIErrors:
    def test_run_with_unknown_id_exits_cleanly(self, capsys):
        from repro.cli import main

        code = main(["run", "fig99", "--scale", "test"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err
