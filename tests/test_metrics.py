"""Tests for the evaluation metrics (CPP/NLCI, CS, RD, WD, L1Dist)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.types import Attribution
from repro.exceptions import ValidationError
from repro.metrics import (
    consistency_scores,
    cosine_similarity,
    effectiveness_curves,
    flip_features,
    l1_distance,
    region_difference,
    summarize_exactness,
    weight_difference,
)


class TestFlipFeatures:
    def test_positive_to_low_negative_to_high(self):
        x = np.array([0.5, 0.5, 0.5])
        att = Attribution(values=np.array([2.0, -3.0, 0.1]))
        flipped = flip_features(x, att, 2)
        # Top-2 by |weight|: index 1 (negative -> 1.0), index 0 (positive -> 0).
        np.testing.assert_allclose(flipped, [0.0, 1.0, 0.5])

    def test_original_untouched(self):
        x = np.array([0.5, 0.5])
        att = Attribution(values=np.array([1.0, -1.0]))
        flip_features(x, att, 2)
        np.testing.assert_allclose(x, [0.5, 0.5])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            flip_features(np.ones(3), Attribution(values=np.ones(2)), 1)


class TestEffectivenessCurves:
    @staticmethod
    def _linear_proba(X):
        """A hand-made 2-class model: p(class 1) = sigmoid(4 x_0 - 2)."""
        X = np.atleast_2d(X)
        z = 4.0 * X[:, 0] - 2.0
        p1 = 1.0 / (1.0 + np.exp(-z))
        return np.column_stack([1.0 - p1, p1])

    def test_relevant_feature_moves_prediction(self):
        instances = np.array([[0.9, 0.5], [0.8, 0.2]])
        atts = [
            Attribution(values=np.array([1.0, 0.0]), target_class=1)
            for _ in range(2)
        ]
        curves = effectiveness_curves(self._linear_proba, instances, atts,
                                      max_features=2)
        # Flipping x0 (the only relevant feature) to 0 flips the label.
        assert curves.avg_cpp[0] > 0.5
        assert curves.nlci[0] == 2
        assert curves.n_instances == 2

    def test_irrelevant_feature_changes_nothing(self):
        instances = np.array([[0.9, 0.5]])
        atts = [Attribution(values=np.array([0.0, 1.0]), target_class=1)]
        curves = effectiveness_curves(self._linear_proba, instances, atts,
                                      max_features=1)
        assert curves.avg_cpp[0] == pytest.approx(0.0, abs=1e-9)
        assert curves.nlci[0] == 0

    def test_nlci_monotone(self, relu_model, blobs3):
        rng = np.random.default_rng(0)
        instances = blobs3.X[:5]
        atts = [
            Attribution(values=rng.normal(size=6), target_class=int(c))
            for c in relu_model.predict(instances)
        ]
        curves = effectiveness_curves(
            relu_model.predict_proba, instances, atts, max_features=6
        )
        assert np.all(np.diff(curves.nlci) >= 0)

    def test_batch_and_loop_agree(self, relu_model, blobs3):
        instances = blobs3.X[:3]
        atts = [
            Attribution(values=np.linspace(-1, 1, 6), target_class=int(c))
            for c in relu_model.predict(instances)
        ]
        fast = effectiveness_curves(
            relu_model.predict_proba, instances, atts, max_features=5, batch=True
        )
        slow = effectiveness_curves(
            relu_model.predict_proba, instances, atts, max_features=5, batch=False
        )
        np.testing.assert_allclose(fast.avg_cpp, slow.avg_cpp)
        np.testing.assert_array_equal(fast.nlci, slow.nlci)

    def test_k_capped_at_dimensionality(self):
        instances = np.array([[0.5, 0.5]])
        atts = [Attribution(values=np.array([1.0, -1.0]), target_class=1)]
        curves = effectiveness_curves(self._linear_proba, instances, atts,
                                      max_features=100)
        assert curves.n_flipped.shape == (2,)

    def test_validations(self):
        with pytest.raises(ValidationError):
            effectiveness_curves(self._linear_proba, np.ones(3), [])
        with pytest.raises(ValidationError):
            effectiveness_curves(self._linear_proba, np.ones((2, 2)), [])
        with pytest.raises(ValidationError):
            effectiveness_curves(
                self._linear_proba,
                np.ones((1, 2)),
                [Attribution(values=np.ones(2))],
                max_features=0,
            )


class TestCosineSimilarity:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, -1.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        v = np.array([1.0, 0.0])
        assert cosine_similarity(v, -v) == pytest.approx(-1.0)

    def test_orthogonal(self):
        assert cosine_similarity(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(0.0)

    def test_zero_conventions(self):
        z = np.zeros(3)
        assert cosine_similarity(z, z) == 1.0
        assert cosine_similarity(z, np.ones(3)) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            cosine_similarity(np.ones(3), np.ones(2))

    @settings(max_examples=30, deadline=None)
    @given(
        v=hnp.arrays(
            np.float64, st.integers(2, 8),
            elements=st.floats(-10, 10, allow_nan=False),
        ),
        scale=st.floats(0.1, 100),
    )
    def test_property_scale_invariance(self, v, scale):
        if np.linalg.norm(v) == 0:
            return
        assert cosine_similarity(v, scale * v) == pytest.approx(1.0)


class TestConsistencyScores:
    def test_identical_rows_score_one(self):
        vectors = np.ones((4, 3))
        scores = consistency_scores(vectors, np.array([1, 0, 3, 2]))
        np.testing.assert_allclose(scores, 1.0)

    def test_sorted_descending(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(6, 4))
        scores = consistency_scores(vectors, np.array([1, 0, 3, 2, 5, 4]))
        assert np.all(np.diff(scores) <= 0)

    def test_out_of_range_neighbors_rejected(self):
        with pytest.raises(ValidationError):
            consistency_scores(np.ones((2, 2)), np.array([1, 5]))


class TestRegionDifference:
    def test_zero_when_same_region(self, relu_model, blobs3):
        x0 = blobs3.X[0]
        samples = x0 + np.random.default_rng(0).uniform(
            -1e-10, 1e-10, size=(5, 6)
        )
        assert region_difference(relu_model, x0, samples) == 0.0

    def test_one_when_any_sample_crosses(self, relu_model, blobs3):
        x0 = blobs3.X[0]
        other = None
        for candidate in blobs3.X[1:]:
            if relu_model.region_id(candidate) != relu_model.region_id(x0):
                other = candidate
                break
        assert other is not None
        samples = np.vstack([x0 + 1e-12, other])
        assert region_difference(relu_model, x0, samples) == 1.0

    def test_validations(self, relu_model, blobs3):
        with pytest.raises(ValidationError):
            region_difference(relu_model, blobs3.X[0], np.empty((0, 6)))
        with pytest.raises(ValidationError):
            region_difference(relu_model, blobs3.X[0], np.ones((2, 3)))


class TestWeightDifference:
    def test_zero_within_region(self, relu_model, blobs3):
        x0 = blobs3.X[0]
        samples = x0 + np.random.default_rng(1).uniform(
            -1e-10, 1e-10, size=(4, 6)
        )
        assert weight_difference(relu_model, x0, samples, 0) == pytest.approx(0.0)

    def test_positive_across_regions(self, relu_model, blobs3):
        x0 = blobs3.X[0]
        rid = relu_model.region_id(x0)
        others = [x for x in blobs3.X if relu_model.region_id(x) != rid][:3]
        wd = weight_difference(relu_model, x0, np.vstack(others), 0)
        assert wd > 0.0

    def test_matches_manual_formula(self, relu_model, blobs3):
        from repro.models.openbox import ground_truth_core_parameters

        x0 = blobs3.X[0]
        samples = blobs3.X[1:4]
        c = 1
        total = 0.0
        for row in samples:
            for cp in (0, 2):
                d0, _ = ground_truth_core_parameters(relu_model, x0, c, cp)
                di, _ = ground_truth_core_parameters(relu_model, row, c, cp)
                total += np.abs(d0 - di).sum()
        expected = total / (2 * 3)
        assert weight_difference(relu_model, x0, samples, c) == pytest.approx(
            expected
        )

    def test_validations(self, relu_model, blobs3):
        with pytest.raises(ValidationError):
            weight_difference(relu_model, blobs3.X[0], np.ones((2, 6)), 99)


class TestExactness:
    def test_l1_distance(self):
        assert l1_distance(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == 3.0

    def test_l1_zero_for_identical(self):
        v = np.array([1.0, -2.0])
        assert l1_distance(v, v) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            l1_distance(np.ones(2), np.ones(3))

    def test_summary(self):
        s = summarize_exactness([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.n_instances == 3

    def test_summary_validation(self):
        with pytest.raises(ValidationError):
            summarize_exactness([])
