"""The hyperplane-sign region index: equivalence and maintenance tests.

The index's contract (``repro/serving/index.py``) is transparency: it
only ever *narrows* the candidate set the exact membership matmul
decides over, and a shortlist miss falls back to the full scan — so
every lookup outcome (hit/miss, winner, distance) must be identical
with the index on or off, across insertion, eviction, snapshot
warm-start, demotion/promotion, and compaction.  These tests pin that
property at every layer (L1 cache, L2 segment store, tiered store),
plus the two PR 6 scan-path regressions (the ``max_candidates``
false-miss fix lives in ``test_serving.py``; the L2 framing dedup and
incremental grouping are pinned here).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import CoreParameterEstimate, Interpretation
from repro.exceptions import ValidationError
from repro.serving import RegionCache, ShardedRegionCache, TieredRegionStore
from repro.serving.index import (
    DEFAULT_INDEX_BITS,
    MAX_INDEX_BITS,
    RegionSignIndex,
    hyperplane_bank,
)
from repro.serving.store import (
    SegmentStore,
    _payload_layout,
    _pack_payload,
    _unpack_payload,
)


def _affine_interp(x0, W, b):
    """A hand-built certified interpretation claiming log-odds
    ``W @ x + b`` for pairs ``(0, j+1)``."""
    pairs = {
        (0, j + 1): CoreParameterEstimate(
            c=0, c_prime=j + 1, weights=W[j], intercept=float(b[j]),
            certified=True,
        )
        for j in range(W.shape[0])
    }
    return Interpretation(
        x0=x0, target_class=0, decision_features=W.mean(axis=0),
        pair_estimates=pairs, method="test", final_edge=1.0,
    )


def _probs_for_claims(t):
    """A probability row whose log-odds ``ln(y_0 / y_j)`` equal ``t[j-1]``."""
    logits = np.concatenate([[0.0], -np.asarray(t, dtype=np.float64)])
    z = np.exp(logits - logits.max())
    return z / z.sum()


def _synthetic_regions(rng, m, d, n_pairs):
    """``m`` regions sharing one claim target ``t``: region ``i`` passes
    the membership test exactly at its own anchor (and, generically,
    nowhere near any other anchor)."""
    W = rng.normal(size=(m, n_pairs, d))
    anchors = rng.uniform(-1.0, 1.0, size=(m, d))
    t = rng.normal(scale=0.5, size=n_pairs)
    B = t - np.einsum("mpd,md->mp", W, anchors)
    return W, B, anchors, _probs_for_claims(t)


class TestRegionSignIndex:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RegionSignIndex(0)
        with pytest.raises(ValidationError):
            RegionSignIndex(3, bits=0)
        with pytest.raises(ValidationError):
            RegionSignIndex(3, bits=MAX_INDEX_BITS + 1)

    def test_bank_shape_and_determinism(self):
        bank = hyperplane_bank(5, 12)
        assert bank.shape == (12, 5)
        assert bank is hyperplane_bank(5, 12)  # process-wide cache
        assert not bank.flags.writeable

    def test_add_discard_replace(self):
        rng = np.random.default_rng(0)
        index = RegionSignIndex(4, bits=8)
        a, b = rng.normal(size=4), rng.normal(size=4)
        index.add("a", a)
        index.add("b", b)
        assert len(index) == 2 and "a" in index
        assert set(index.shortlist(a, 10)) == {"a", "b"} or "a" in set(
            index.shortlist(a, 10)
        )
        index.add("a", b)  # re-add moves the key to the new bucket
        assert len(index) == 2
        index.discard("a")
        assert len(index) == 1 and "a" not in index
        index.discard("missing")  # no-op
        index.clear()
        assert len(index) == 0
        assert index.shortlist(a, 4) == []

    def test_add_batch_matches_sequential(self):
        rng = np.random.default_rng(1)
        anchors = rng.normal(size=(64, 6))
        batch = RegionSignIndex(6, bits=10)
        batch.add_batch(range(64), anchors)
        seq = RegionSignIndex(6, bits=10)
        for i, x in enumerate(anchors):
            seq.add(i, x)
        assert len(batch) == len(seq) == 64
        assert batch._code_of == seq._code_of
        for x in anchors[:8]:
            assert sorted(batch.shortlist(x, 5)) == sorted(
                seq.shortlist(x, 5)
            )

    def test_codes_deterministic_across_instances(self):
        rng = np.random.default_rng(2)
        anchors = rng.normal(size=(16, 5))
        a = RegionSignIndex(5, bits=DEFAULT_INDEX_BITS)
        b = RegionSignIndex(5, bits=DEFAULT_INDEX_BITS)
        assert np.array_equal(a.codes(anchors), b.codes(anchors))
        assert a.code(anchors[0]) == int(a.codes(anchors)[0])

    def test_shortlist_caps_at_k_nearest(self):
        rng = np.random.default_rng(3)
        # One bit -> two buckets: every anchor lands in a probed bucket,
        # so the shortlist must rank purely by anchor distance.
        index = RegionSignIndex(3, bits=1)
        anchors = rng.normal(size=(32, 3))
        index.add_batch(range(32), anchors)
        x = anchors[11]
        keys = index.shortlist(x, 4)
        assert len(keys) == 4 and 11 in keys
        dists = ((anchors - x) ** 2).sum(axis=1)
        assert set(keys) == set(np.argsort(dists)[:4])


class TestL1Equivalence:
    """RegionCache lookups must be identical with the index on or off."""

    def _paired_caches(self, **kwargs):
        plain = RegionCache(**kwargs)
        indexed = RegionCache(region_index=True, **kwargs)
        return plain, indexed

    def _fill(self, caches, rng, m=40, d=6, n_pairs=2):
        entries = []
        for _ in range(m):
            x0 = rng.normal(size=d)
            W = rng.normal(size=(n_pairs, d))
            b = rng.normal(size=n_pairs)
            interp = _affine_interp(x0, W, b)
            for cache in caches:
                cache.insert(interp)
            entries.append((x0, W, b))
        return entries

    def _assert_identical(self, plain, indexed, probes):
        for x, y in probes:
            a = plain.lookup(x, y, 0)
            b = indexed.lookup(x, y, 0)
            assert (a is None) == (b is None)
            if a is not None:
                assert np.array_equal(
                    a.decision_features, b.decision_features
                )
        ps, ix = plain.stats(), indexed.stats()
        assert (ps.hits, ps.misses) == (ix.hits, ix.misses)

    def test_identical_lookups(self):
        rng = np.random.default_rng(10)
        plain, indexed = self._paired_caches()
        entries = self._fill((plain, indexed), rng)
        probes = []
        for x0, W, b in entries:
            probes.append((x0, _probs_for_claims(W @ x0 + b)))  # hits
        for _ in range(20):  # mostly misses
            x = rng.normal(size=6)
            _, W, b = entries[rng.integers(len(entries))]
            probes.append((x, _probs_for_claims(W @ x + b)))
        self._assert_identical(plain, indexed, probes)
        assert indexed.stats().index_hits > 0

    def test_identical_under_eviction(self):
        rng = np.random.default_rng(11)
        plain, indexed = self._paired_caches(max_entries=8)
        entries = self._fill((plain, indexed), rng, m=30)
        assert plain.stats().evictions == indexed.stats().evictions > 0
        probes = [
            (x0, _probs_for_claims(W @ x0 + b)) for x0, W, b in entries
        ]
        self._assert_identical(plain, indexed, probes)
        # The index never serves an evicted entry: every group's index
        # tracks exactly the resident keys.
        for group in indexed._groups.values():
            assert sorted(group.index._code_of) == sorted(group.keys)

    def test_snapshot_warm_start_populates_index(self, tmp_path):
        rng = np.random.default_rng(12)
        plain = RegionCache()
        entries = self._fill((plain,), rng, m=20)
        path = tmp_path / "regions.npz"
        assert plain.save(path) == 20
        indexed = RegionCache(region_index=True)
        assert indexed.load(path) == 20
        probes = [
            (x0, _probs_for_claims(W @ x0 + b)) for x0, W, b in entries
        ]
        self._assert_identical(plain, indexed, probes)
        assert indexed.stats().index_hits > 0

    def test_fallback_finds_far_passing_entry(self):
        """A passing entry outside the probed buckets (or ranked beyond
        the shortlist) must still be served — via the full-scan
        fallback — so recall is identical to the unindexed cache."""
        d = 2
        # `far` passes everywhere (zero weights, intercepts == claims);
        # `near` never passes; the probe sits next to `near`.
        t = np.array([0.4, -0.2])
        far = _affine_interp(np.full(d, 10.0), np.zeros((2, d)), t)
        near = _affine_interp(
            np.array([0.1, 0.0]), np.zeros((2, d)), t + 1.0
        )
        plain = RegionCache()
        indexed = RegionCache(region_index=True, index_shortlist=1)
        for cache in (plain, indexed):
            cache.insert(far)
            cache.insert(near)
        x = np.zeros(d)
        y = _probs_for_claims(t)
        a = plain.lookup(x, y, 0)
        b = indexed.lookup(x, y, 0)
        assert a is not None and b is not None
        assert np.array_equal(a.decision_features, b.decision_features)
        assert np.array_equal(b.decision_features, far.decision_features)
        assert indexed.stats().index_fallbacks >= 1

    def test_sharded_stats_aggregate_index_meters(self):
        rng = np.random.default_rng(13)
        sharded = ShardedRegionCache(n_shards=3, region_index=True)
        entries = []
        for _ in range(24):
            x0 = rng.normal(size=5)
            W = rng.normal(size=(2, 5))
            b = rng.normal(size=2)
            sharded.insert(_affine_interp(x0, W, b))
            entries.append((x0, W, b))
        for x0, W, b in entries:
            assert sharded.lookup(x0, _probs_for_claims(W @ x0 + b), 0) \
                is not None
        stats = sharded.stats()
        assert stats.index_hits == sum(
            s.stats().index_hits for s in sharded.shards
        )
        assert stats.index_hits > 0


class TestPayloadLayoutRegression:
    """Regression (PR 6): ``SegmentStore.scan`` used to re-derive the
    record framing inline (hardcoded ``24 + 16 * P``), silently
    duplicating ``_unpack_payload``; both now read offsets from
    ``_payload_layout``, pinned here against the packer."""

    def test_layout_matches_packed_payload(self):
        rng = np.random.default_rng(20)
        for P, d in ((1, 3), (2, 5), (4, 8)):
            pairs = tuple((0, j + 1) for j in range(P))
            W = rng.normal(size=(P, d))
            b = rng.normal(size=P)
            x0 = rng.normal(size=d)
            feats = rng.normal(size=d)
            payload = _pack_payload(0, pairs, W, b, x0, feats, 0.5)
            layout = _payload_layout(P, d)
            assert layout["edge"] + 8 == len(payload)
            for name, ref, count in (
                ("w", W, P * d), ("b", b, P), ("x0", x0, d),
                ("feats", feats, d),
            ):
                got = np.frombuffer(
                    payload, dtype="<f8", count=count,
                    offset=layout[name],
                )
                assert np.array_equal(got, np.asarray(ref).ravel())
            # And the full unpacker agrees with the layout-based reads.
            target, upairs, uW, ub, ux0, ufeats, uedge = _unpack_payload(
                payload
            )
            assert target == 0 and upairs == pairs and uedge == 0.5
            assert np.array_equal(uW, W) and np.array_equal(ub, b)
            assert np.array_equal(ux0, x0) and np.array_equal(ufeats, feats)


class TestL2SegmentStore:
    """SegmentStore scans: index equivalence and incremental grouping."""

    def _paired_stores(self, tmp_path, **kwargs):
        plain = SegmentStore(tmp_path / "plain", fsync=False, **kwargs)
        indexed = SegmentStore(
            tmp_path / "indexed", fsync=False, region_index=True, **kwargs
        )
        return plain, indexed

    def _fill(self, stores, rng, m=30, d=5, n_pairs=2):
        W, B, anchors, y = _synthetic_regions(rng, m, d, n_pairs)
        pairs = tuple((0, j + 1) for j in range(n_pairs))
        for i in range(m):
            for store in stores:
                assert store.append(
                    i, 0, pairs, W[i], B[i], anchors[i],
                    W[i].mean(axis=0), 1.0,
                )
        return W, B, anchors, y

    def _assert_identical_scans(self, plain, indexed, probes, y):
        for x in probes:
            assert plain.scan(x, y, 0, tol=1e-6, floor=1e-12) == \
                indexed.scan(x, y, 0, tol=1e-6, floor=1e-12)

    def test_scan_equivalence_and_counters(self, tmp_path):
        rng = np.random.default_rng(30)
        plain, indexed = self._paired_stores(tmp_path)
        W, B, anchors, y = self._fill((plain, indexed), rng)
        self._assert_identical_scans(plain, indexed, anchors, y)
        assert indexed.index_hits > 0
        # Misses fall back to the full scan before being declared.
        fallbacks_before = indexed.index_fallbacks
        miss = np.full(5, 50.0)
        assert indexed.scan(miss, y, 0, tol=1e-6, floor=1e-12) is None
        assert indexed.index_fallbacks == fallbacks_before + 1

    def test_equivalence_after_mark_dead(self, tmp_path):
        rng = np.random.default_rng(31)
        plain, indexed = self._paired_stores(tmp_path)
        W, B, anchors, y = self._fill((plain, indexed), rng)
        for sig in (0, 7, 13):
            assert plain.mark_dead(sig) and indexed.mark_dead(sig)
        self._assert_identical_scans(plain, indexed, anchors, y)
        # A dead record's anchor must be a scan miss in both stores.
        assert plain.scan(anchors[7], y, 0, tol=1e-6, floor=1e-12) is None

    def test_equivalence_after_compaction(self, tmp_path):
        rng = np.random.default_rng(32)
        plain, indexed = self._paired_stores(tmp_path)
        W, B, anchors, y = self._fill((plain, indexed), rng)
        for sig in range(0, 20):
            plain.mark_dead(sig)
            indexed.mark_dead(sig)
        assert plain.compact() > 0 and indexed.compact() > 0
        self._assert_identical_scans(plain, indexed, anchors, y)
        assert indexed.scan(
            anchors[25], y, 0, tol=1e-6, floor=1e-12
        ) == (25, 0.0)

    def test_reopen_rebuilds_identical_index(self, tmp_path):
        """Persisted anchors round-trip through JSON exactly, so the
        reopened store's sign codes — and scans — are identical."""
        rng = np.random.default_rng(33)
        store = SegmentStore(
            tmp_path / "s", fsync=False, region_index=True
        )
        W, B, anchors, y = self._fill((store,), rng, m=20)
        codes_before = {
            key: dict(index._code_of)
            for key, index in store._group_indexes.items()
        }
        results_before = [
            store.scan(x, y, 0, tol=1e-6, floor=1e-12) for x in anchors
        ]
        store.close()
        reopened = SegmentStore(
            tmp_path / "s", fsync=False, region_index=True
        )
        codes_after = {
            key: dict(index._code_of)
            for key, index in reopened._group_indexes.items()
        }
        assert codes_before == codes_after
        assert results_before == [
            reopened.scan(x, y, 0, tol=1e-6, floor=1e-12) for x in anchors
        ]
        reopened.close()

    def test_legacy_index_rows_without_anchor(self, tmp_path):
        """Index rows written before the anchor field (9 elements) must
        still open; anchors are lazily re-read from the mmap'd payload
        and the rebuilt sign index is identical."""
        rng = np.random.default_rng(34)
        store = SegmentStore(
            tmp_path / "s", fsync=False, region_index=True
        )
        W, B, anchors, y = self._fill((store,), rng, m=12)
        expected = [
            store.scan(x, y, 0, tol=1e-6, floor=1e-12) for x in anchors
        ]
        codes = {
            key: dict(index._code_of)
            for key, index in store._group_indexes.items()
        }
        store.close()
        index_path = tmp_path / "s" / "index.json"
        payload = json.loads(index_path.read_text())
        payload["records"] = [row[:9] for row in payload["records"]]
        index_path.write_text(json.dumps(payload))
        reopened = SegmentStore(
            tmp_path / "s", fsync=False, region_index=True
        )
        assert codes == {
            key: dict(index._code_of)
            for key, index in reopened._group_indexes.items()
        }
        assert expected == [
            reopened.scan(x, y, 0, tol=1e-6, floor=1e-12) for x in anchors
        ]
        reopened.close()

    def test_incremental_grouping_matches_rebuild(self, tmp_path):
        """Regression (PR 6): the (class, pairs) grouping used to be
        rebuilt from ``_by_sig`` inside every scan call; it is now
        maintained incrementally and must stay equal to the from-scratch
        grouping through append, mark_dead and compaction."""
        rng = np.random.default_rng(35)
        store = SegmentStore(tmp_path / "s", fsync=False)

        def rebuilt():
            groups: dict = {}
            for sig, record in store._by_sig.items():
                key = (record.target_class, record.pairs)
                groups.setdefault(key, set()).add(sig)
            return groups

        def incremental():
            return {
                key: set(members)
                for key, members in store._live_groups.items()
                if members
            }

        self._fill((store,), rng, m=15)
        assert incremental() == rebuilt()
        for sig in (1, 4, 9):
            store.mark_dead(sig)
            assert incremental() == rebuilt()
        store.compact()
        assert incremental() == rebuilt()
        store.wipe()
        assert incremental() == rebuilt() == {}
        store.close()


class TestTieredEquivalence:
    """TieredRegionStore: identical behavior through demote/promote."""

    def _paired_stores(self, tmp_path, **kwargs):
        plain = TieredRegionStore(
            tmp_path / "plain", n_shards=2, fsync=False, **kwargs
        )
        indexed = TieredRegionStore(
            tmp_path / "indexed", n_shards=2, fsync=False,
            region_index=True, **kwargs
        )
        return plain, indexed

    def test_identical_through_demote_promote(self, tmp_path):
        rng = np.random.default_rng(40)
        plain, indexed = self._paired_stores(tmp_path, max_entries=4)
        entries = []
        for _ in range(12):
            x0 = rng.normal(size=5)
            W = rng.normal(size=(2, 5))
            b = rng.normal(size=2)
            interp = _affine_interp(x0, W, b)
            assert plain.insert(interp) and indexed.insert(interp)
            entries.append((x0, W, b))
        # Early inserts were demoted to L2; looking them up promotes
        # them back (evicting/demoting others) — the same churn in both.
        for x0, W, b in entries + entries[:4]:
            y = _probs_for_claims(W @ x0 + b)
            a = plain.lookup(x0, y, 0)
            c = indexed.lookup(x0, y, 0)
            assert a is not None and c is not None
            assert np.array_equal(a.decision_features, c.decision_features)
        ps, ix = plain.stats(), indexed.stats()
        assert (ps.l1_hits, ps.l2_hits, ps.l2_misses, ps.promotions) == \
            (ix.l1_hits, ix.l2_hits, ix.l2_misses, ix.promotions)
        assert ps.demotions == ix.demotions
        assert ix.l2_index_hits + ix.l2_index_fallbacks > 0
        plain.close()
        indexed.close()

    def test_stats_expose_l2_index_meters(self, tmp_path):
        store = TieredRegionStore(
            tmp_path / "s", n_shards=2, max_entries=2, fsync=False,
            region_index=True,
        )
        stats = store.stats()
        assert stats.l2_index_hits == 0
        assert stats.l2_index_fallbacks == 0
        assert "l2_index_hits" in stats.as_dict()
        store.close()
