"""Tests for the prediction-API boundary (repro.api)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    NoisyResponse,
    PredictionAPI,
    RoundedResponse,
    TruncatedResponse,
)
from repro.exceptions import APIBudgetExceededError, ValidationError


class TestPredictionAPI:
    def test_metadata(self, linear_api):
        assert linear_api.n_features == 6
        assert linear_api.n_classes == 3

    def test_query_counting(self, linear_model, blobs3):
        api = PredictionAPI(linear_model)
        api.predict_proba(blobs3.X[:7])
        api.predict_proba(blobs3.X[0])
        assert api.query_count == 8
        api.reset_query_count()
        assert api.query_count == 0

    def test_single_vs_batch_shapes(self, linear_api, blobs3):
        single = linear_api.predict_proba(blobs3.X[0])
        batch = linear_api.predict_proba(blobs3.X[:1])
        assert single.shape == (3,)
        assert batch.shape == (1, 3)
        np.testing.assert_allclose(single, batch[0])

    def test_matches_model(self, linear_model, linear_api, blobs3):
        np.testing.assert_allclose(
            linear_api.predict_proba(blobs3.X[:5]),
            linear_model.predict_proba(blobs3.X[:5]),
        )

    def test_predict_labels(self, linear_model, blobs3):
        api = PredictionAPI(linear_model)
        np.testing.assert_array_equal(
            api.predict(blobs3.X[:5]), linear_model.predict(blobs3.X[:5])
        )

    def test_budget_enforced(self, linear_model, blobs3):
        api = PredictionAPI(linear_model, budget=10)
        api.predict_proba(blobs3.X[:10])
        with pytest.raises(APIBudgetExceededError):
            api.predict_proba(blobs3.X[0])

    def test_budget_rejects_partial_batch(self, linear_model, blobs3):
        api = PredictionAPI(linear_model, budget=5)
        with pytest.raises(APIBudgetExceededError):
            api.predict_proba(blobs3.X[:6])
        # Nothing was consumed by the rejected call.
        assert api.query_count == 0

    def test_wrong_width_rejected(self, linear_api):
        with pytest.raises(ValidationError):
            linear_api.predict_proba(np.ones(5))

    def test_non_model_rejected(self):
        with pytest.raises(ValidationError):
            PredictionAPI(object())

    def test_invalid_budget_rejected(self, linear_model):
        with pytest.raises(ValidationError):
            PredictionAPI(linear_model, budget=0)


class TestResponseTransforms:
    def test_rounded_response(self, linear_model, blobs3):
        api = PredictionAPI(linear_model, transform=RoundedResponse(2))
        probs = api.predict_proba(blobs3.X[:5])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        # Before renormalization entries had 2 decimals; after renormalizing
        # by a near-1 total they stay within half a unit of the grid.
        assert np.all(np.abs(probs - np.round(probs, 2)) < 5e-3)

    def test_rounded_validation(self):
        with pytest.raises(ValidationError):
            RoundedResponse(0)

    def test_noisy_response_changes_output(self, linear_model, blobs3):
        api_clean = PredictionAPI(linear_model)
        api_noisy = PredictionAPI(
            linear_model, transform=NoisyResponse(0.05, seed=0)
        )
        clean = api_clean.predict_proba(blobs3.X[:5])
        noisy = api_noisy.predict_proba(blobs3.X[:5])
        assert not np.allclose(clean, noisy)
        np.testing.assert_allclose(noisy.sum(axis=1), 1.0)
        assert np.all(noisy >= 0)

    def test_noisy_zero_scale_identity(self, linear_model, blobs3):
        api = PredictionAPI(linear_model, transform=NoisyResponse(0.0))
        np.testing.assert_allclose(
            api.predict_proba(blobs3.X[:3]),
            linear_model.predict_proba(blobs3.X[:3]),
        )

    def test_noisy_validation(self):
        with pytest.raises(ValidationError):
            NoisyResponse(-0.1)

    def test_truncated_response(self, linear_model, blobs3):
        api = PredictionAPI(linear_model, transform=TruncatedResponse(2))
        probs = api.predict_proba(blobs3.X[:5])
        assert np.all((probs > 0).sum(axis=1) <= 2)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_truncated_noop_when_k_covers_classes(self, linear_model, blobs3):
        api = PredictionAPI(linear_model, transform=TruncatedResponse(3))
        np.testing.assert_allclose(
            api.predict_proba(blobs3.X[:3]),
            linear_model.predict_proba(blobs3.X[:3]),
        )

    def test_truncated_validation(self):
        with pytest.raises(ValidationError):
            TruncatedResponse(1)
