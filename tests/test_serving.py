"""Unit tests for the serving layer: cache, service, metrics, envelopes."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import (
    ERROR_CERTIFICATE_FAILED,
    ErrorEnvelope,
    InterpretRequest,
    InterpretResponse,
    PredictionAPI,
)
from repro.core import OpenAPIInterpreter, verify_interpretation
from repro.exceptions import ValidationError
from repro.serving import (
    InterpretationService,
    RegionCache,
    ServiceMetrics,
    zipf_clustered_workload,
)


class TestRegionCache:
    def test_hit_after_insert(self, relu_api, blobs3):
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, blobs3.X[0])
        cache = RegionCache()
        assert cache.insert(interp)
        y0 = relu_api.predict_proba(blobs3.X[0])
        hit = cache.lookup(blobs3.X[0], y0, interp.target_class)
        assert hit is not None
        assert np.array_equal(hit.decision_features, interp.decision_features)
        assert hit.n_queries == 1 and hit.iterations == 0

    def test_miss_for_other_region(self, relu_api, relu_model, blobs3):
        """An instance of a different class region must not match."""
        x0 = blobs3.X[0]
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, x0)
        cache = RegionCache()
        cache.insert(interp)
        # Find an instance whose log-odds differ from the cached claim.
        other = next(
            x for x in blobs3.X[1:]
            if int(np.argmax(relu_api.predict_proba(x))) == interp.target_class
            and cache.lookup(
                x, relu_api.predict_proba(x), interp.target_class
            ) is None
        )
        assert other is not None  # at least one same-class other-region point
        assert cache.stats().misses >= 1

    def test_miss_for_other_target_class(self, relu_api, blobs3):
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, blobs3.X[0])
        cache = RegionCache()
        cache.insert(interp)
        y0 = relu_api.predict_proba(blobs3.X[0])
        wrong_class = (interp.target_class + 1) % relu_api.n_classes
        assert cache.lookup(blobs3.X[0], y0, wrong_class) is None

    def test_rejects_uncertified(self, linear_api, blobs3):
        from repro.core import NaiveInterpreter

        interp = NaiveInterpreter(0.1, seed=0).interpret(linear_api, blobs3.X[0])
        with pytest.raises(ValidationError):
            RegionCache().insert(interp)

    def test_duplicate_insert_skipped(self, relu_api, blobs3):
        cache = RegionCache()
        a = OpenAPIInterpreter(seed=0).interpret(relu_api, blobs3.X[0])
        b = OpenAPIInterpreter(seed=1).interpret(relu_api, blobs3.X[0])
        assert cache.insert(a)
        assert not cache.insert(b)  # same region, same class -> refreshed
        assert len(cache) == 1
        assert cache.stats().duplicates_skipped == 1

    def test_lru_eviction(self, relu_api, blobs3):
        interpreter = OpenAPIInterpreter(seed=0)
        cache = RegionCache(max_entries=2)
        inserted = 0
        for x in blobs3.X:
            interp = interpreter.interpret(relu_api, x)
            inserted += cache.insert(interp)
            if cache.stats().evictions >= 1:
                break
        assert inserted >= 3
        assert len(cache) == 2
        assert cache.stats().evictions >= 1

    def test_cache_served_passes_verification(self, relu_api, blobs3):
        """A cache-served interpretation is a falsifiable claim at the NEW
        instance — and a genuine one passes fresh-probe verification."""
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, blobs3.X[0])
        cache = RegionCache()
        cache.insert(interp)
        x = blobs3.X[0] + 1e-6
        y = relu_api.predict_proba(x)
        served = cache.lookup(x, y, interp.target_class)
        assert served is not None
        report = verify_interpretation(relu_api, served, seed=0)
        assert report.passed

    def test_validation(self):
        with pytest.raises(ValidationError):
            RegionCache(max_entries=0)
        with pytest.raises(ValidationError):
            RegionCache(tol=0.0)
        with pytest.raises(ValidationError):
            RegionCache(max_candidates=0)


def _affine_interp(x0, W, b):
    """A hand-built certified interpretation claiming log-odds W @ x + b
    for pairs ``(0, j+1)`` — full geometric control for cache tests."""
    from repro.core import CoreParameterEstimate, Interpretation

    pairs = {
        (0, j + 1): CoreParameterEstimate(
            c=0, c_prime=j + 1, weights=W[j], intercept=float(b[j]),
            certified=True,
        )
        for j in range(W.shape[0])
    }
    return Interpretation(
        x0=x0, target_class=0, decision_features=W.mean(axis=0),
        pair_estimates=pairs, method="test", final_edge=1.0,
    )


def _probs_for_claims(t):
    """A probability row whose log-odds ``ln(y_0 / y_j)`` equal ``t[j-1]``."""
    logits = np.concatenate([[0.0], -np.asarray(t, dtype=np.float64)])
    z = np.exp(logits - logits.max())
    return z / z.sum()


class TestRegionCacheVectorized:
    """The packed membership scan: validation and loop-equivalence."""

    def _filled_cache(self, rng, n_entries=8, d=5, n_pairs=2, **kwargs):
        cache = RegionCache(**kwargs)
        entries = []
        for _ in range(n_entries):
            x0 = rng.normal(size=d)
            W = rng.normal(size=(n_pairs, d))
            b = rng.normal(size=n_pairs)
            interp = _affine_interp(x0, W, b)
            assert cache.insert(interp)
            entries.append((x0, W, b, interp))
        return cache, entries

    def test_lookup_dim_mismatch_raises(self):
        rng = np.random.default_rng(0)
        cache, _ = self._filled_cache(rng, d=5)
        with pytest.raises(ValidationError, match=r"\b3\b.*\b5\b"):
            cache.lookup(np.zeros(3), _probs_for_claims([0.0, 0.0]), 0)

    def test_insert_dim_mismatch_raises(self):
        rng = np.random.default_rng(1)
        cache, _ = self._filled_cache(rng, d=5)
        bad = _affine_interp(
            np.zeros(4), rng.normal(size=(2, 4)), rng.normal(size=2)
        )
        with pytest.raises(ValidationError, match=r"\b4\b.*\b5\b"):
            cache.insert(bad)

    def test_lookup_y0_too_short_raises(self):
        rng = np.random.default_rng(2)
        cache, _ = self._filled_cache(rng, d=5, n_pairs=2)  # classes 0..2
        with pytest.raises(ValidationError, match="class"):
            cache.lookup(np.zeros(5), np.array([0.5, 0.5]), 0)

    def test_empty_cache_lookup_is_miss_any_dim(self):
        cache = RegionCache()
        assert cache.lookup(np.zeros(7), np.array([0.5, 0.5]), 0) is None
        assert cache.stats().misses == 1

    def test_scan_matches_per_entry_reference(self):
        """One-matmul membership scan == the per-entry claim_errors loop.

        The reference filters by tolerance over *all* candidates and
        serves the nearest passing one; ``max_candidates`` must not
        change the outcome of the full scan (it only caps the indexed
        shortlist), so both parametrizations share the same reference.
        """
        rng = np.random.default_rng(3)
        for max_candidates in (None, 3):
            cache, entries = self._filled_cache(
                rng, n_entries=10, d=4, max_candidates=max_candidates
            )
            probes = [e[0] + rng.normal(scale=0.05, size=4) for e in entries]
            probes += [rng.normal(size=4) for _ in range(5)]
            for x in probes:
                # Claims of a random entry at x — a hit for that entry
                # (and only entries agreeing at x), plus pure-noise rows.
                x0, W, b, _ = entries[rng.integers(len(entries))]
                y = _probs_for_claims(W @ x + b)

                passing = [
                    e for e in cache._entries.values()
                    if e.claim_errors(x, y, floor=cache.floor).max()
                    <= cache.tol
                ]
                expected = min(
                    passing,
                    key=lambda e: float(np.sum((e.x0 - x) ** 2)),
                    default=None,
                )
                served = cache.lookup(x, y, 0)
                if expected is None:
                    assert served is None
                else:
                    assert served is not None
                    assert np.array_equal(
                        served.decision_features, expected.decision_features
                    )

    def test_max_candidates_does_not_cause_false_miss(self):
        """Regression (PR 6): the full scan pays the membership matmul
        for *every* candidate, so windowing the tolerance comparison to
        the nearest ``max_candidates`` could only turn a passing region
        into a false miss (and a full re-solve) with zero compute saved.
        The old ``_scan`` failed this test; the fixed one filters by
        tolerance first and serves the nearest passing entry."""
        rng = np.random.default_rng(4)
        d = 4
        W_far = rng.normal(size=(2, d))
        b_far = rng.normal(size=2)
        far = _affine_interp(np.full(d, 5.0), W_far, b_far)
        near = _affine_interp(
            np.zeros(d), rng.normal(size=(2, d)), rng.normal(size=2)
        )
        x = np.full(d, 4.0)  # nearer to `far` (dist 2) than `near` (dist 8)
        y = _probs_for_claims(W_far @ x + b_far)

        windowed = RegionCache(max_candidates=1)
        windowed.insert(far)
        windowed.insert(near)
        served = windowed.lookup(x, y, 0)  # far is nearest and passes
        assert served is not None
        assert np.array_equal(served.decision_features, far.decision_features)

        # The probe nearest `near` (whose claims differ) while only
        # `far` passes: the old window kept only `near` and reported a
        # false miss; the passing entry must be served regardless of
        # its distance rank.
        x_near_miss = np.full(d, 0.5)
        y2 = _probs_for_claims(W_far @ x_near_miss + b_far)
        served = windowed.lookup(x_near_miss, y2, 0)
        assert served is not None
        assert np.array_equal(served.decision_features, far.decision_features)
        assert windowed.stats().misses == 0

        unwindowed = RegionCache(max_candidates=None)
        unwindowed.insert(far)
        unwindowed.insert(near)
        assert unwindowed.lookup(x_near_miss, y2, 0) is not None

    def test_eviction_keeps_packed_stacks_consistent(self):
        rng = np.random.default_rng(5)
        cache, entries = self._filled_cache(rng, n_entries=6, d=3,
                                            max_entries=4)
        assert len(cache) == 4
        assert cache.stats().evictions == 2
        # Only the 4 newest entries remain servable.
        for i, (x0, W, b, _) in enumerate(entries):
            y = _probs_for_claims(W @ x0 + b)
            hit = cache.lookup(x0, y, 0)
            assert (hit is not None) == (i >= 2)

    def test_clear_resets_dimensionality(self):
        rng = np.random.default_rng(6)
        cache, _ = self._filled_cache(rng, d=5)
        cache.clear()
        other = _affine_interp(
            np.zeros(3), rng.normal(size=(2, 3)), rng.normal(size=2)
        )
        assert cache.insert(other)

    def test_fresh_cache_hit_rate_is_zero_not_nan(self):
        stats = RegionCache().stats()
        assert stats.hit_rate == 0.0

    def test_stats_as_dict_is_json_safe(self):
        import json

        rng = np.random.default_rng(7)
        cache, _ = self._filled_cache(rng, n_entries=3)
        payload = cache.stats().as_dict()
        assert payload["size"] == 3
        assert payload["resident_bytes"] > 0
        json.dumps(payload)


class TestEvictionPolicies:
    """LRU capacity + TTL expiry bookkeeping on the monolithic cache."""

    def _interp(self, rng, d=4):
        x0 = rng.normal(size=d)
        W = rng.normal(size=(2, d))
        b = rng.normal(size=2)
        return _affine_interp(x0, W, b), W, b

    def test_ttl_requires_and_validates_ttl_s(self):
        with pytest.raises(ValidationError, match="ttl_s"):
            RegionCache(eviction="ttl")
        with pytest.raises(ValidationError, match="ttl_s"):
            RegionCache(eviction="ttl", ttl_s=0.0)
        with pytest.raises(ValidationError, match="ttl_s"):
            RegionCache(eviction="lru", ttl_s=5.0)
        with pytest.raises(ValidationError, match="eviction"):
            RegionCache(eviction="fifo")

    def test_ttl_expires_and_hit_refreshes_lease(self):
        from tests.test_shard import FakeClock

        rng = np.random.default_rng(8)
        clock = FakeClock()
        cache = RegionCache(eviction="ttl", ttl_s=10.0, clock=clock)
        interp, W, b = self._interp(rng)
        cache.insert(interp)
        y = _probs_for_claims(W @ interp.x0 + b)
        clock.advance(8.0)
        assert cache.lookup(interp.x0, y, 0) is not None
        clock.advance(8.0)  # 16s after insert, 8s after last serve
        assert cache.lookup(interp.x0, y, 0) is not None
        clock.advance(10.5)
        assert cache.lookup(interp.x0, y, 0) is None
        stats = cache.stats()
        assert stats.evictions == 1 and stats.size == 0

    def test_duplicate_insert_refreshes_ttl_lease(self):
        rng = np.random.default_rng(9)
        from tests.test_shard import FakeClock

        clock = FakeClock()
        cache = RegionCache(eviction="ttl", ttl_s=10.0, clock=clock)
        interp, W, b = self._interp(rng)
        cache.insert(interp)
        clock.advance(8.0)
        assert not cache.insert(_affine_interp(interp.x0 + 1e-9, W, b))
        clock.advance(8.0)  # 16s after first insert, 8s after refresh
        y = _probs_for_claims(W @ interp.x0 + b)
        assert cache.lookup(interp.x0, y, 0) is not None

    def test_resident_bytes_tracks_inserts_and_evictions(self):
        rng = np.random.default_rng(10)
        cache = RegionCache(max_entries=2)
        sizes = []
        for _ in range(4):
            interp, _, _ = self._interp(rng)
            cache.insert(interp)
            sizes.append(cache.stats().resident_bytes)
        assert sizes[0] > 0
        assert sizes[1] == 2 * sizes[0]      # uniform entry shapes
        assert sizes[2] == sizes[1]          # insert + eviction balance
        assert cache.stats().evictions == 2
        cache.clear()
        assert cache.stats().resident_bytes == 0


class TestEnvelopes:
    def test_request_validates_shape(self):
        with pytest.raises(ValidationError):
            InterpretRequest(request_id=0, x0=np.ones((2, 2)))

    def test_success_and_failure_constructors(self, relu_api, blobs3):
        request = InterpretRequest(request_id=7, x0=blobs3.X[0])
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, blobs3.X[0])
        ok = InterpretResponse.success(request, interp, n_queries=3)
        assert ok.ok and ok.request_id == 7 and ok.error is None
        bad = InterpretResponse.failure(
            request, ERROR_CERTIFICATE_FAILED, "boom", retryable=True
        )
        assert not bad.ok and bad.interpretation is None
        assert bad.error == ErrorEnvelope(
            code=ERROR_CERTIFICATE_FAILED, message="boom", retryable=True
        )


class TestServiceBasics:
    def test_inline_interpret_and_stats(self, relu_api_fresh, blobs3):
        service = InterpretationService(relu_api_fresh, seed=0)
        r1 = service.interpret(blobs3.X[0])
        r2 = service.interpret(blobs3.X[0])
        assert r1.ok and not r1.served_from_cache
        assert r2.ok and r2.served_from_cache
        stats = service.stats()
        assert stats.n_requests == 2 and stats.cache_hits == 1
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.n_queries == relu_api_fresh.query_count
        assert "cache hits" in stats.as_text()
        assert stats.as_dict()["cache_hits"] == 1

    def test_explicit_target_class(self, relu_api_fresh, blobs3):
        service = InterpretationService(relu_api_fresh, seed=0)
        response = service.interpret(blobs3.X[0], target_class=1)
        assert response.ok
        assert response.interpretation.target_class == 1

    def test_submit_validation(self, relu_api_fresh):
        service = InterpretationService(relu_api_fresh, seed=0)
        with pytest.raises(ValidationError):
            service.submit(np.ones(3))
        with pytest.raises(ValidationError):
            service.submit(np.ones(relu_api_fresh.n_features), target_class=99)

    def test_request_ids_monotone(self, relu_api_fresh, blobs3):
        service = InterpretationService(relu_api_fresh, seed=0)
        responses = service.interpret_many(blobs3.X[:3])
        assert [r.request_id for r in responses] == [0, 1, 2]

    def test_duplicate_requests_coalesced_in_one_batch(
        self, relu_api_fresh, blobs3
    ):
        """Identical queued instances ride one solve."""
        service = InterpretationService(relu_api_fresh, seed=0)
        X = np.vstack([blobs3.X[0]] * 4)
        responses = service.interpret_many(X)
        assert all(r.ok for r in responses)
        assert sum(r.served_from_cache for r in responses) == 3
        assert sum(r.n_queries for r in responses) == relu_api_fresh.query_count
        # Savings accounting: sequentially this costs (1 + T) trips for
        # the representative plus 1 per duplicate (each would hit the
        # just-cached entry); actual is 1 probe + T lock-step rounds.
        T = responses[0].interpretation.iterations
        stats = service.stats()
        assert stats.round_trips == 1 + T
        assert stats.round_trips_saved == (1 + T + 3) - (1 + T)

    def test_nan_request_rejected_at_submit(self, relu_api_fresh):
        x0 = np.zeros(relu_api_fresh.n_features)
        x0[0] = np.nan
        service = InterpretationService(relu_api_fresh, seed=0)
        with pytest.raises(ValidationError):
            service.submit(x0)

    def test_internal_failure_becomes_envelope_and_worker_survives(
        self, relu_model, blobs3
    ):
        """An unexpected solver exception must not kill the background
        loop or hang pendings: it becomes an internal_error envelope and
        the next request is served normally."""
        from repro.api import ERROR_INTERNAL

        api = PredictionAPI(relu_model)
        service = InterpretationService(api, seed=0, max_wait_s=0.005)

        real = service.interpreter.interpret_batch
        blown = {"done": False}

        def explode(*args, **kwargs):
            if not blown["done"]:
                blown["done"] = True
                raise RuntimeError("solver blew up")
            return real(*args, **kwargs)

        service.interpreter.interpret_batch = explode
        with service:
            poisoned = service.interpret(blobs3.X[0], timeout=30.0)
            assert not poisoned.ok
            assert poisoned.error.code == ERROR_INTERNAL
            assert "solver blew up" in poisoned.error.message
            healthy = service.interpret(blobs3.X[1], timeout=30.0)
            assert healthy.ok
        stats = service.stats()
        assert stats.n_errors == 1 and stats.n_ok == 1
        assert stats.n_queries == api.query_count  # aborted flush metered

    def test_background_loop_concurrent_submits(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        service = InterpretationService(
            api, seed=0, max_batch_size=16, max_wait_s=0.01
        )
        results: dict[int, bool] = {}

        def client(i: int) -> None:
            response = service.interpret(blobs3.X[i % 4], timeout=30.0)
            results[i] = response.ok

        with service:
            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(results) == 12 and all(results.values())
        stats = service.stats()
        assert stats.n_requests == 12
        assert stats.n_queries == api.query_count
        assert stats.round_trips == api.request_count

    def test_stop_drains_queue(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        service = InterpretationService(api, seed=0)
        service.start()
        pendings = [service.submit(x) for x in blobs3.X[:4]]
        service.stop()
        assert all(p.result(timeout=5.0).ok for p in pendings)

    def test_validation(self, relu_api_fresh):
        with pytest.raises(ValidationError):
            InterpretationService(relu_api_fresh, max_batch_size=0)
        with pytest.raises(ValidationError):
            InterpretationService(relu_api_fresh, max_wait_s=-1.0)


class TestServiceMetrics:
    def test_empty_snapshot(self):
        stats = ServiceMetrics().snapshot()
        assert stats.n_requests == 0
        # JSON-safe no-traffic snapshot: rates report 0.0, never NaN.
        assert stats.hit_rate == 0.0
        assert stats.queries_per_interpretation == 0.0
        assert np.isnan(stats.p50_latency_s)
        assert "n/a" in stats.as_text()

    def test_empty_snapshot_as_dict_is_json_safe(self):
        import json

        payload = ServiceMetrics().snapshot().as_dict()
        assert payload["hit_rate"] == 0.0
        assert payload["p50_latency_s"] is None
        assert payload["p95_latency_s"] is None
        assert "NaN" not in json.dumps(payload)

    def test_round_trip_savings_accounting(self):
        metrics = ServiceMetrics()
        metrics.record_flush(
            queries_spent=40, round_trips=3, round_trips_sequential=11
        )
        stats = metrics.snapshot()
        assert stats.n_queries == 40
        assert stats.round_trips == 3
        assert stats.round_trips_saved == 8

    def test_validation(self):
        with pytest.raises(ValidationError):
            ServiceMetrics(latency_window=0)


class TestWorkload:
    def test_shapes_and_skew(self, blobs3):
        anchors = blobs3.X[:10]
        requests = zipf_clustered_workload(anchors, 500, seed=0)
        assert requests.shape == (500, blobs3.n_features)
        # Zipf skew: the most popular anchor dominates.
        counts = np.array([
            np.sum(np.all(requests == a, axis=1)) for a in anchors
        ])
        assert counts[0] == counts.max()
        assert counts[0] > 500 / 10

    def test_jitter_perturbs(self, blobs3):
        anchors = blobs3.X[:5]
        requests = zipf_clustered_workload(anchors, 50, jitter=1e-4, seed=1)
        assert not any(
            np.all(requests[0] == a) for a in anchors
        )

    def test_validation(self, blobs3):
        with pytest.raises(ValidationError):
            zipf_clustered_workload(blobs3.X[:3], 0)
        with pytest.raises(ValidationError):
            zipf_clustered_workload(blobs3.X[:3], 10, exponent=0.0)
        with pytest.raises(ValidationError):
            zipf_clustered_workload(blobs3.X[:3], 10, jitter=-1.0)
        with pytest.raises(ValidationError):
            zipf_clustered_workload(np.ones(3), 10)


@pytest.fixture()
def relu_api_fresh(relu_model):
    """Function-scoped API so query meters start at zero per test."""
    return PredictionAPI(relu_model)
