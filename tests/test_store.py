"""Tiered region store: durability, transparency, tier round trips.

Covers the store module's three contracts:

* **durability** — a kill during an append leaves a loadable store (the
  torn tail frame is detected by its CRC and truncated away); a crash
  between the record fsync and the index rename is recovered by the
  tail scan; compaction preserves every live signature while dropping
  dead bytes; a clean close drains L1 so reopening resumes the full
  inventory;
* **bitwise transparency** — interpretations are identical with L2 off,
  L2 on, and after demote → promote round trips through the mmap'd
  segments (the paper's Theorem 2 exactness contract, extended to
  disk);
* **snapshot interop** — `.npz` region snapshots written by any tier
  bootstrap the disk tier, bitwise, across shard counts.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.api import PredictionAPI
from repro.core import CoreParameterEstimate, Interpretation
from repro.exceptions import ValidationError
from repro.models.openbox import ground_truth_decision_features
from repro.serving import (
    InterpretationService,
    L2ReaderCache,
    RegionCache,
    SegmentStore,
    ShardedInterpretationService,
    ShardedRegionCache,
    TieredRegionStore,
    zipf_clustered_workload,
)
from repro.serving.store import _HEADER, _pack_payload


def _affine_interp(x0, W, b, *, target_class=0):
    """A hand-built certified interpretation claiming log-odds W @ x + b
    for pairs ``(target, j)`` — full geometric control for store tests."""
    others = [j for j in range(W.shape[0] + 1) if j != target_class]
    pairs = {
        (target_class, j): CoreParameterEstimate(
            c=target_class, c_prime=j, weights=W[i], intercept=float(b[i]),
            certified=True,
        )
        for i, j in enumerate(others)
    }
    return Interpretation(
        x0=x0, target_class=target_class, decision_features=W.mean(axis=0),
        pair_estimates=pairs, method="test", final_edge=1.0,
    )


def _probs_for_claims(t):
    """A probability row whose log-odds ``ln(y_0 / y_j)`` equal ``t[j-1]``."""
    logits = np.concatenate([[0.0], -np.asarray(t, dtype=np.float64)])
    z = np.exp(logits - logits.max())
    return z / z.sum()


def _random_records(rng, n, *, d=4, P=2):
    """``n`` synthetic L2 records keyed by signature ``100 + i``."""
    records = {}
    pairs = tuple((0, j + 1) for j in range(P))
    for i in range(n):
        records[100 + i] = (
            0, pairs, rng.normal(size=(P, d)), rng.normal(size=P),
            rng.normal(size=d), rng.normal(size=d), float(rng.uniform(0.1, 1)),
        )
    return records


def _fill(store: SegmentStore, records: dict) -> None:
    for sig, rec in records.items():
        assert store.append(sig, *rec)


def _segment_paths(directory):
    return sorted(directory.glob("segment-*.seg"))


class TestSegmentStoreDurability:
    def test_append_read_bitwise_and_duplicate_skip(self, tmp_path):
        rng = np.random.default_rng(0)
        records = _random_records(rng, 5)
        store = SegmentStore(tmp_path)
        _fill(store, records)
        assert len(store) == 5
        sig, rec = next(iter(records.items()))
        assert not store.append(sig, *rec)  # live duplicate skipped
        for sig, rec in records.items():
            got = store.read(sig)
            assert got[0] == rec[0] and got[1] == rec[1]
            for a, b in zip(got[2:6], rec[2:6]):
                assert np.asarray(a).tobytes() == np.asarray(b).tobytes()
            assert got[6] == rec[6]
        store.close()

    def test_kill_during_append_leaves_loadable_store(self, tmp_path):
        rng = np.random.default_rng(1)
        records = _random_records(rng, 4)
        store = SegmentStore(tmp_path)
        _fill(store, records)
        store.close()
        # Simulate a crash mid-append: a torn frame (valid-looking header,
        # truncated payload) lands past the indexed tail.
        seg = _segment_paths(tmp_path)[0]
        payload = _pack_payload(*records[100])
        header = _HEADER.pack(b"RGS1", len(payload), zlib.crc32(payload), 999)
        with open(seg, "ab") as handle:
            handle.write(header + payload[: len(payload) // 2])
        torn_size = seg.stat().st_size

        reopened = SegmentStore(tmp_path)
        assert len(reopened) == 4                       # tail ignored
        assert 999 not in reopened.live_signatures()
        assert seg.stat().st_size < torn_size           # tail truncated
        for sig, rec in records.items():                # data intact
            assert reopened.read(sig)[2].tobytes() == rec[2].tobytes()
        # The store keeps working after recovery.
        assert reopened.append(999, *records[100])
        assert len(reopened) == 5
        reopened.close()

    def test_crash_between_fsync_and_index_rename_is_recovered(
        self, tmp_path
    ):
        rng = np.random.default_rng(2)
        records = _random_records(rng, 3)
        store = SegmentStore(tmp_path)
        _fill(store, records)
        store.close()
        # Simulate the record fsync landing but the index rename not: a
        # whole valid frame sits past the indexed tail.
        extra_sig, extra = 999, records[100]
        payload = _pack_payload(*extra)
        header = _HEADER.pack(
            b"RGS1", len(payload), zlib.crc32(payload), extra_sig
        )
        with open(_segment_paths(tmp_path)[0], "ab") as handle:
            handle.write(header + payload)

        reopened = SegmentStore(tmp_path)
        assert extra_sig in reopened.live_signatures()
        assert reopened.read(extra_sig)[2].tobytes() == extra[2].tobytes()
        reopened.close()

    def test_missing_index_recovers_by_full_scan(self, tmp_path):
        rng = np.random.default_rng(3)
        records = _random_records(rng, 4)
        store = SegmentStore(tmp_path)
        _fill(store, records)
        store.close()
        (tmp_path / "index.json").unlink()
        reopened = SegmentStore(tmp_path)
        assert reopened.live_signatures() == set(records)
        reopened.close()

    def test_orphan_segments_from_interrupted_compaction_are_dropped(
        self, tmp_path
    ):
        rng = np.random.default_rng(4)
        store = SegmentStore(tmp_path)
        _fill(store, _random_records(rng, 2))
        store.close()
        orphan = tmp_path / "segment-99999.seg"
        orphan.write_bytes(b"leftover of a crashed compaction")
        reopened = SegmentStore(tmp_path)
        assert not orphan.exists()
        assert len(reopened) == 2
        reopened.close()

    def test_budget_marks_stalest_dead_and_compaction_preserves_live(
        self, tmp_path
    ):
        rng = np.random.default_rng(5)
        records = _random_records(rng, 12)
        probe = SegmentStore(tmp_path / "probe")
        sig0, rec0 = next(iter(records.items()))
        probe.append(sig0, *rec0)
        frame = probe.live_bytes
        probe.close()

        store = SegmentStore(
            tmp_path / "bounded", max_bytes=4 * frame, compact_ratio=0.5
        )
        _fill(store, records)
        assert len(store) == 4                    # budget enforced
        assert store.live_bytes <= 4 * frame
        assert store.n_compactions >= 1           # dead ratio crossed 0.5
        assert store.total_bytes <= int(4 * frame / 0.5) + 2 * frame
        live_before = store.live_signatures()
        reclaimed = store.compact()
        assert reclaimed >= 0
        assert store.live_signatures() == live_before
        assert store.dead_bytes == 0
        assert store.n_segments == 1
        for sig in live_before:                   # payloads survive, bitwise
            assert store.read(sig)[2].tobytes() == records[sig][2].tobytes()
        store.close()
        reopened = SegmentStore(tmp_path / "bounded")
        assert reopened.live_signatures() == live_before
        reopened.close()

    def test_validation(self, tmp_path):
        with pytest.raises(ValidationError):
            SegmentStore(tmp_path, max_bytes=0)
        with pytest.raises(ValidationError):
            SegmentStore(tmp_path, compact_ratio=1.0)
        store = SegmentStore(tmp_path)
        with pytest.raises(ValidationError):
            store.read(12345)
        store.close()


class TestTieredRegionStore:
    def test_eviction_demotes_and_lookup_promotes_bitwise(self, tmp_path):
        rng = np.random.default_rng(6)
        store = TieredRegionStore(tmp_path, n_shards=2, max_entries=2)
        interps = []
        for _ in range(5):
            interp = _affine_interp(
                rng.normal(size=4), rng.normal(size=(2, 4)),
                rng.normal(size=2),
            )
            interps.append(interp)
            assert store.insert(interp)
        stats = store.stats()
        assert stats.demotions == 3                 # 5 inserted, L1 holds 2
        assert stats.l2_entries == 3
        assert len(store) == 5                      # nothing was dropped

        # The first-inserted region was evicted to disk; serving it again
        # promotes it back, bitwise.
        victim = interps[0]
        claims = np.asarray(
            [
                victim.pair_estimates[p].weights @ victim.x0
                + victim.pair_estimates[p].intercept
                for p in sorted(victim.pair_estimates)
            ]
        )
        y0 = _probs_for_claims(claims)
        hit = store.lookup(victim.x0, y0, victim.target_class)
        assert hit is not None
        assert (
            hit.decision_features.tobytes()
            == victim.decision_features.tobytes()
        )
        for pair, est in victim.pair_estimates.items():
            assert (
                hit.pair_estimates[pair].weights.tobytes()
                == est.weights.tobytes()
            )
        stats = store.stats()
        assert stats.l2_hits == 1 and stats.promotions == 1
        # Promoted: the next same-region lookup is a RAM hit.
        again = store.lookup(victim.x0, y0, victim.target_class)
        assert again is not None
        assert store.stats().l1_hits >= 1
        store.close()

    def test_close_drains_l1_and_reopen_resumes_inventory(self, tmp_path):
        rng = np.random.default_rng(7)
        store = TieredRegionStore(tmp_path, n_shards=2, max_entries=4)
        interps = [
            _affine_interp(
                rng.normal(size=4), rng.normal(size=(2, 4)),
                rng.normal(size=2),
            )
            for _ in range(4)
        ]
        for interp in interps:
            assert store.insert(interp)
        assert store.stats().l1["size"] > 0         # some only in RAM
        assert store.stats().l2_entries < 4         # ... not yet on disk
        store.close()                               # drain persists them

        reopened = TieredRegionStore(tmp_path, n_shards=3, max_entries=4)
        assert len(reopened) == 4
        for interp in interps:
            claims = np.asarray(
                [
                    interp.pair_estimates[p].weights @ interp.x0
                    + interp.pair_estimates[p].intercept
                    for p in sorted(interp.pair_estimates)
                ]
            )
            hit = reopened.lookup(
                interp.x0, _probs_for_claims(claims), interp.target_class
            )
            assert hit is not None
            assert (
                hit.decision_features.tobytes()
                == interp.decision_features.tobytes()
            )
        reopened.close()

    def test_snapshot_bootstraps_l2_across_shard_counts(self, tmp_path):
        rng = np.random.default_rng(8)
        store = TieredRegionStore(
            tmp_path / "src", n_shards=2, max_entries=2
        )
        interps = [
            _affine_interp(
                rng.normal(size=4), rng.normal(size=(2, 4)),
                rng.normal(size=2),
            )
            for _ in range(5)
        ]
        for interp in interps:
            store.insert(interp)
        snap = tmp_path / "regions.npz"
        assert store.save(snap) == 5                # both tiers, deduped
        store.close()

        for n_shards in (1, 3, 5):
            boot = TieredRegionStore(
                tmp_path / f"boot{n_shards}", n_shards=n_shards,
                max_entries=2,
            )
            assert boot.load(snap) == 5
            assert boot.stats().l2_entries == 5     # cold RAM, warm disk
            assert len(boot.l1) == 0
            for interp in interps:
                claims = np.asarray(
                    [
                        interp.pair_estimates[p].weights @ interp.x0
                        + interp.pair_estimates[p].intercept
                        for p in sorted(interp.pair_estimates)
                    ]
                )
                hit = boot.lookup(
                    interp.x0, _probs_for_claims(claims),
                    interp.target_class,
                )
                assert hit is not None
                assert (
                    hit.decision_features.tobytes()
                    == interp.decision_features.tobytes()
                )
            boot.close()

    def test_region_cache_snapshot_bootstraps_l2(self, tmp_path):
        """`.npz` snapshots written by the RAM tiers are L2 bootstrap
        payloads — the PR's snapshot-rewiring contract."""
        rng = np.random.default_rng(9)
        cache = RegionCache()
        interp = _affine_interp(
            rng.normal(size=4), rng.normal(size=(2, 4)), rng.normal(size=2)
        )
        cache.insert(interp)
        snap = tmp_path / "cache.npz"
        cache.save(snap)

        store = TieredRegionStore(tmp_path / "boot", n_shards=2)
        assert store.load(snap) == 1
        claims = np.asarray(
            [
                interp.pair_estimates[p].weights @ interp.x0
                + interp.pair_estimates[p].intercept
                for p in sorted(interp.pair_estimates)
            ]
        )
        hit = store.lookup(
            interp.x0, _probs_for_claims(claims), interp.target_class
        )
        assert hit is not None
        assert (
            hit.decision_features.tobytes()
            == interp.decision_features.tobytes()
        )
        store.close()

    def test_load_requires_empty_store(self, tmp_path):
        rng = np.random.default_rng(10)
        store = TieredRegionStore(tmp_path / "a", n_shards=2)
        store.insert(
            _affine_interp(
                rng.normal(size=4), rng.normal(size=(2, 4)),
                rng.normal(size=2),
            )
        )
        snap = tmp_path / "snap.npz"
        store.save(snap)
        with pytest.raises(ValidationError):
            store.load(snap)
        store.clear()
        assert len(store) == 0
        assert store.load(snap) == 1
        store.close()

    def test_service_rejects_cache_and_store_together(
        self, relu_model, tmp_path
    ):
        api = PredictionAPI(relu_model)
        store = TieredRegionStore(tmp_path, n_shards=2)
        with pytest.raises(ValidationError):
            InterpretationService(api, cache=RegionCache(), store=store)
        with pytest.raises(ValidationError):
            InterpretationService(api, store=store, enable_cache=False)
        with pytest.raises(ValidationError):
            ShardedInterpretationService(
                api, cache=ShardedRegionCache(), store=store
            )
        store.close()


class TestTieredTransparency:
    """Interpretations identical with L2 off, L2 on, and across the
    multi-worker service — the PR's acceptance property."""

    def _replay(self, relu_model, blobs3, tmp_path, *, n_workers):
        requests = zipf_clustered_workload(
            blobs3.X[:10], 60, exponent=1.5, seed=3
        )
        # Arm 1: RAM-only sharded cache (L2 off), unbounded — the
        # reference in which no region is ever forgotten.  (A *bounded*
        # RAM arm would re-solve evicted regions; a fresh certified
        # solve of the same region is exact but not bit-identical to
        # the first one, so it is not the right bitwise reference.)
        ram_service = ShardedInterpretationService(
            PredictionAPI(relu_model), n_workers=1,
            cache=ShardedRegionCache(n_shards=2, max_entries=1_000_000),
            max_batch_size=8, seed=0,
        )
        ram = ram_service.interpret_many(requests)
        # Arm 2: tiered store (L2 on) at the same L1 bound.
        store = TieredRegionStore(tmp_path, n_shards=2, max_entries=4)
        tiered_service = ShardedInterpretationService(
            PredictionAPI(relu_model), n_workers=n_workers, store=store,
            max_batch_size=8, seed=0,
        )
        if n_workers > 1:
            with tiered_service:
                tiered = tiered_service.interpret_many(requests)
        else:
            tiered = tiered_service.interpret_many(requests)
        return requests, ram, tiered, store

    def test_l2_on_equals_l2_off_bitwise(self, relu_model, blobs3, tmp_path):
        requests, ram, tiered, store = self._replay(
            relu_model, blobs3, tmp_path, n_workers=1
        )
        assert store.stats().demotions > 0          # the disk tier engaged
        assert store.stats().l2_hits > 0
        for a, b in zip(ram, tiered):
            assert a.ok and b.ok
            assert (
                a.interpretation.decision_features.tobytes()
                == b.interpretation.decision_features.tobytes()
            )
        store.close()

    def test_multiworker_store_served_answers_match_ground_truth(
        self, relu_model, blobs3, tmp_path
    ):
        requests, _, tiered, store = self._replay(
            relu_model, blobs3, tmp_path, n_workers=2
        )
        for x0, response in zip(requests, tiered):
            assert response.ok
            interp = response.interpretation
            gt = ground_truth_decision_features(
                relu_model, x0, interp.target_class
            )
            assert np.abs(interp.decision_features - gt).max() < 1e-6
        store.close()


# --------------------------------------------------------------------- #
# Single-writer / many-reader discipline (the gateway's shared L2)
# --------------------------------------------------------------------- #


def _y0_for(interp):
    """The probability row under which ``interp``'s region claims hold."""
    claims = np.asarray(
        [
            interp.pair_estimates[p].weights @ interp.x0
            + interp.pair_estimates[p].intercept
            for p in sorted(interp.pair_estimates)
        ]
    )
    return _probs_for_claims(claims)


def _record_of(interp):
    """``interp`` in the snapshot record format ``SegmentStore.append``
    takes — the bytes a gateway writer harvests from a worker."""
    pairs = tuple(sorted(interp.pair_estimates))
    W = np.stack([interp.pair_estimates[p].weights for p in pairs])
    b = np.asarray([interp.pair_estimates[p].intercept for p in pairs])
    return (
        interp.target_class, pairs, W, b, interp.x0,
        interp.decision_features, float(interp.final_edge),
    )


class TestReadOnlyAndEpochs:
    def test_read_only_rejects_every_mutation(self, tmp_path):
        rng = np.random.default_rng(20)
        records = _random_records(rng, 2)
        writer = SegmentStore(tmp_path)
        _fill(writer, records)
        writer.close()

        reader = SegmentStore(tmp_path, read_only=True)
        sig, rec = next(iter(records.items()))
        assert reader.read(sig)[2].tobytes() == rec[2].tobytes()
        with pytest.raises(ValidationError, match="read_only"):
            reader.append(999, *rec)
        with pytest.raises(ValidationError, match="read_only"):
            reader.mark_dead(sig)
        with pytest.raises(ValidationError, match="read_only"):
            reader.persist_index()
        with pytest.raises(ValidationError, match="read_only"):
            reader.sync()
        with pytest.raises(ValidationError, match="read_only"):
            reader.compact()
        reader.close()

    def test_read_only_and_exclusive_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValidationError, match="mutually exclusive"):
            SegmentStore(tmp_path, read_only=True, exclusive=True)

    def test_exclusive_lock_admits_one_writer_at_a_time(self, tmp_path):
        first = SegmentStore(tmp_path, exclusive=True)
        with pytest.raises(ValidationError, match="another writer"):
            SegmentStore(tmp_path, exclusive=True)
        # Readers are never blocked by the writer lock.
        reader = SegmentStore(tmp_path, read_only=True)
        reader.close()
        first.close()
        successor = SegmentStore(tmp_path, exclusive=True)
        successor.close()

    def test_reader_follows_publishes_without_reopening(self, tmp_path):
        rng = np.random.default_rng(21)
        records = _random_records(rng, 3)
        writer = SegmentStore(tmp_path)
        _fill(writer, records)
        writer.persist_index()

        reader = SegmentStore(tmp_path, read_only=True)
        assert reader.epoch == writer.epoch
        assert reader.live_signatures() == set(records)
        assert reader.maybe_refresh() is False      # writer idle: one stat

        late_sig, late = 777, next(iter(records.values()))
        assert writer.append(late_sig, *late)
        writer.persist_index()                      # epoch bump
        assert reader.maybe_refresh() is True
        assert reader.epoch == writer.epoch
        assert reader.read(late_sig)[2].tobytes() == late[2].tobytes()
        reader.close()
        writer.close()

    def test_reader_keeps_serving_across_a_compaction(self, tmp_path):
        """The writer compacts (old segment files are unlinked) while a
        reader holds mmaps of them: the reader's un-refreshed view keeps
        serving the old inventory bitwise, and the refresh converges."""
        rng = np.random.default_rng(22)
        records = _random_records(rng, 4)
        writer = SegmentStore(tmp_path)
        _fill(writer, records)
        writer.persist_index()

        reader = SegmentStore(tmp_path, read_only=True)
        victim = min(records)
        for sig, rec in records.items():            # map every segment
            assert reader.read(sig)[2].tobytes() == rec[2].tobytes()

        writer.mark_dead(victim)
        writer.compact()
        # Not yet refreshed: the unlinked files are still mapped, so the
        # pre-compaction inventory — dead region included — serves.
        assert reader.live_signatures() == set(records)
        for sig, rec in records.items():
            assert reader.read(sig)[2].tobytes() == rec[2].tobytes()
        assert reader.maybe_refresh() is True
        assert reader.live_signatures() == set(records) - {victim}
        for sig in set(records) - {victim}:
            assert reader.read(sig)[2].tobytes() == records[sig][2].tobytes()
        reader.close()
        writer.close()

    def test_new_segment_is_indexed_at_creation(self, tmp_path):
        """The very first append must land in an *indexed* segment:
        recovery reaps unindexed segment files as compaction orphans, so
        registering at creation is what makes a crash right after the
        first fsync recoverable (and the fleet's fresh L2 adoptable)."""
        import json

        rng = np.random.default_rng(23)
        sig, rec = next(iter(_random_records(rng, 1).items()))
        writer = SegmentStore(tmp_path)
        assert writer.append(sig, *rec)
        # No close, no explicit publish: the index on disk already
        # references the segment (with a pre-append tail).
        payload = json.loads((tmp_path / "index.json").read_text())
        assert payload["segments"] == ["segment-00000.seg"]

        # A concurrent fresh open therefore tail-scans the segment and
        # adopts the fsynced record instead of deleting the file.
        reader = SegmentStore(tmp_path, read_only=True)
        assert reader.live_signatures() == {sig}
        assert reader.read(sig)[2].tobytes() == rec[2].tobytes()
        reader.close()
        writer.close()


class TestL2ReaderCacheTier:
    def _shared_store(self, tmp_path, n, *, seed):
        rng = np.random.default_rng(seed)
        interps = [
            _affine_interp(
                rng.normal(size=4), rng.normal(size=(2, 4)),
                rng.normal(size=2),
            )
            for _ in range(n)
        ]
        writer = SegmentStore(tmp_path)
        for i, interp in enumerate(interps):
            assert writer.append(1000 + i, *_record_of(interp))
        writer.persist_index()
        return writer, interps

    def test_l2_hit_promotes_bitwise_then_serves_from_l1(self, tmp_path):
        writer, interps = self._shared_store(tmp_path, 3, seed=30)
        reader = L2ReaderCache(tmp_path, max_entries=8)
        target = interps[0]
        y0 = _y0_for(target)

        hit = reader.lookup(target.x0, y0, target.target_class)
        assert hit is not None
        assert hit.method == L2ReaderCache.served_method
        assert (
            hit.decision_features.tobytes()
            == target.decision_features.tobytes()
        )
        for pair, est in target.pair_estimates.items():
            assert (
                hit.pair_estimates[pair].weights.tobytes()
                == est.weights.tobytes()
            )
        stats = reader.stats()
        assert stats["l2_hits"] == 1 and stats["l1_hits"] == 0
        assert stats["l2_records"] == 3

        again = reader.lookup(target.x0, y0, target.target_class)
        assert again is not None                    # promoted: RAM hit
        assert reader.stats()["l1_hits"] == 1
        reader.close()
        writer.close()

    def test_insert_is_private_to_the_reader(self, tmp_path):
        """Workers never write the shared directory: an insert lands in
        the reader's own L1 only, invisible to every other reader."""
        writer, _ = self._shared_store(tmp_path, 1, seed=31)
        rng = np.random.default_rng(32)
        fresh = _affine_interp(
            rng.normal(size=4), rng.normal(size=(2, 4)), rng.normal(size=2)
        )
        reader_a = L2ReaderCache(tmp_path, max_entries=8)
        reader_b = L2ReaderCache(tmp_path, max_entries=8)
        assert reader_a.insert(fresh)
        assert reader_a.lookup(
            fresh.x0, _y0_for(fresh), fresh.target_class
        ) is not None
        assert reader_b.lookup(
            fresh.x0, _y0_for(fresh), fresh.target_class
        ) is None
        assert reader_b.stats()["l2_misses"] == 1
        assert len(writer) == 1                     # shared dir untouched
        reader_a.close()
        reader_b.close()
        writer.close()

    def test_lookups_converge_on_new_epochs(self, tmp_path):
        writer, interps = self._shared_store(tmp_path, 1, seed=33)
        reader = L2ReaderCache(tmp_path, max_entries=8)
        assert reader.lookup(
            interps[0].x0, _y0_for(interps[0]), interps[0].target_class
        ) is not None

        rng = np.random.default_rng(34)
        late = _affine_interp(
            rng.normal(size=4), rng.normal(size=(2, 4)), rng.normal(size=2)
        )
        assert writer.append(2000, *_record_of(late))
        writer.persist_index()
        # The miss path refreshes to the new epoch and finds the record.
        hit = reader.lookup(late.x0, _y0_for(late), late.target_class)
        assert hit is not None
        assert (
            hit.decision_features.tobytes()
            == late.decision_features.tobytes()
        )
        stats = reader.stats()
        assert stats["refreshes"] >= 1
        assert stats["epoch"] == writer.epoch
        reader.close()
        writer.close()

    def test_region_index_on_serves_identical_bytes(self, tmp_path):
        writer, interps = self._shared_store(tmp_path, 4, seed=35)
        plain = L2ReaderCache(tmp_path, max_entries=8)
        indexed = L2ReaderCache(tmp_path, max_entries=8, region_index=True)
        for interp in interps:
            y0 = _y0_for(interp)
            a = plain.lookup(interp.x0, y0, interp.target_class)
            b = indexed.lookup(interp.x0, y0, interp.target_class)
            assert a is not None and b is not None
            assert (
                a.decision_features.tobytes()
                == b.decision_features.tobytes()
            )
        plain.close()
        indexed.close()
        writer.close()
