"""Tests for numerical activation/loss primitives (repro.models.activations)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ValidationError
from repro.models.activations import (
    cross_entropy,
    cross_entropy_gradient,
    log_softmax,
    one_hot,
    relu,
    softmax,
)

finite_logits = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
    elements=st.floats(-50, 50, allow_nan=False),
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(4, 5)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_extreme_logits_stable(self):
        probs = softmax(np.array([[1000.0, 0.0], [-1000.0, 0.0]]))
        assert np.all(np.isfinite(probs))
        assert probs[0, 0] == pytest.approx(1.0)
        assert probs[1, 0] == pytest.approx(0.0)

    def test_1d_input(self):
        probs = softmax(np.array([0.0, 0.0]))
        np.testing.assert_allclose(probs, [0.5, 0.5])

    @settings(max_examples=30, deadline=None)
    @given(logits=finite_logits)
    def test_property_valid_distribution(self, logits):
        probs = softmax(logits)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(logits=finite_logits, shift=st.floats(-100, 100, allow_nan=False))
    def test_property_shift_invariance(self, logits, shift):
        """softmax(z + c) == softmax(z): the gauge freedom OpenAPI exploits."""
        np.testing.assert_allclose(
            softmax(logits + shift), softmax(logits), atol=1e-12
        )


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        logits = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(
            log_softmax(logits), np.log(softmax(logits)), atol=1e-12
        )

    def test_no_underflow_for_extreme_inputs(self):
        out = log_softmax(np.array([[0.0, -2000.0]]))
        assert np.isfinite(out).all()
        assert out[0, 1] == pytest.approx(-2000.0, rel=1e-9)


class TestRelu:
    def test_clamps_negatives(self):
        np.testing.assert_array_equal(
            relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )


class TestOneHot:
    def test_encoding(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ValidationError):
            one_hot(np.array([-1]), 3)

    def test_2d_rejected(self):
        with pytest.raises(ValidationError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert cross_entropy(logits, np.array([0, 1])) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_prediction(self):
        logits = np.zeros((4, 3))
        assert cross_entropy(logits, np.zeros(4, dtype=int)) == pytest.approx(
            np.log(3)
        )

    def test_1d_rejected(self):
        with pytest.raises(ValidationError):
            cross_entropy(np.zeros(3), np.array([0]))

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        grad = cross_entropy_gradient(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                bumped = logits.copy()
                bumped[i, j] += eps
                numeric = (cross_entropy(bumped, labels) - cross_entropy(logits, labels)) / eps
                assert grad[i, j] == pytest.approx(numeric, abs=1e-5)
