"""Tests for pickle-free serialization (repro.io)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OpenAPIInterpreter, verify_interpretation
from repro.exceptions import ValidationError
from repro.io import (
    load_interpretation,
    load_model,
    save_interpretation,
    save_model,
)
from repro.models import MaxOutNetwork


class TestModelRoundTrips:
    def test_softmax_regression(self, linear_model, blobs3, tmp_path):
        path = tmp_path / "linear.npz"
        save_model(linear_model, path)
        loaded = load_model(path)
        np.testing.assert_array_equal(
            loaded.predict_proba(blobs3.X[:10]),
            linear_model.predict_proba(blobs3.X[:10]),
        )

    def test_relu_network(self, relu_model, blobs3, tmp_path):
        path = tmp_path / "plnn.npz"
        save_model(relu_model, path)
        loaded = load_model(path)
        np.testing.assert_array_equal(
            loaded.decision_logits(blobs3.X[:10]),
            relu_model.decision_logits(blobs3.X[:10]),
        )
        # Region structure survives too (same parameters, same masks).
        assert loaded.region_id(blobs3.X[0]) == relu_model.region_id(blobs3.X[0])

    def test_maxout_network(self, maxout_model, blobs3, tmp_path):
        path = tmp_path / "maxout.npz"
        save_model(maxout_model, path)
        loaded = load_model(path)
        assert isinstance(loaded, MaxOutNetwork)
        np.testing.assert_array_equal(
            loaded.decision_logits(blobs3.X[:10]),
            maxout_model.decision_logits(blobs3.X[:10]),
        )

    def test_lmt(self, lmt_model, xor_dataset, tmp_path):
        path = tmp_path / "lmt.npz"
        save_model(lmt_model, path)
        loaded = load_model(path)
        np.testing.assert_array_equal(
            loaded.predict_proba(xor_dataset.X[:20]),
            lmt_model.predict_proba(xor_dataset.X[:20]),
        )
        assert loaded.n_leaves == lmt_model.n_leaves
        for x in xor_dataset.X[:10]:
            assert loaded.region_id(x) == lmt_model.region_id(x)

    def test_unsupported_model_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            save_model(object(), tmp_path / "bad.npz")

    def test_corrupted_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz file")
        with pytest.raises(ValidationError):
            load_model(path)

    def test_non_artifact_npz_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, data=np.ones(3))
        with pytest.raises(ValidationError):
            load_model(path)


class TestInterpretationRoundTrip:
    def test_full_round_trip(self, relu_api, blobs3, tmp_path):
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, blobs3.X[0])
        path = tmp_path / "claim.npz"
        save_interpretation(interp, path)
        loaded = load_interpretation(path)

        np.testing.assert_array_equal(loaded.x0, interp.x0)
        np.testing.assert_array_equal(
            loaded.decision_features, interp.decision_features
        )
        assert loaded.target_class == interp.target_class
        assert loaded.method == interp.method
        assert loaded.iterations == interp.iterations
        assert loaded.final_edge == interp.final_edge
        assert loaded.all_certified
        assert set(loaded.pair_estimates) == set(interp.pair_estimates)
        for pair in interp.pair_estimates:
            np.testing.assert_array_equal(
                loaded.pair_estimates[pair].weights,
                interp.pair_estimates[pair].weights,
            )
        np.testing.assert_array_equal(loaded.samples, interp.samples)

    def test_reloaded_claim_verifies(self, relu_api, blobs3, tmp_path):
        """The audit workflow: store the claim, reload it later, re-check
        it against the live API."""
        interp = OpenAPIInterpreter(seed=0).interpret(relu_api, blobs3.X[1])
        path = tmp_path / "audit.npz"
        save_interpretation(interp, path)
        report = verify_interpretation(relu_api, load_interpretation(path), seed=1)
        assert report.passed

    def test_model_file_not_an_interpretation(self, linear_model, tmp_path):
        path = tmp_path / "model.npz"
        save_model(linear_model, path)
        with pytest.raises(ValidationError):
            load_interpretation(path)
