"""Query-transport broker: coalescing, retries, metering, envelopes.

Covers the two load-bearing invariants of :mod:`repro.api.transport`
(bitwise transparency of fused trips, exact per-caller query-meter
attribution), the failure machinery (retry/backoff, rate limits,
exhaustion as ``transport_failed`` envelopes), and the serving-layer
integration (brokered flush workers, mid-run transport death).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api import (
    ERROR_TRANSPORT_FAILED,
    BrokerHandle,
    DirectTransport,
    PredictionAPI,
    QueryBroker,
    QueryClient,
    RetryPolicy,
    SimulatedTransport,
)
from repro.core import BatchOpenAPIInterpreter, OpenAPIInterpreter
from repro.exceptions import (
    APIBudgetExceededError,
    RateLimitedError,
    TransientTransportError,
    TransportError,
    TransportExhaustedError,
    ValidationError,
)
from repro.serving import InterpretationService, ShardedInterpretationService


class FlakyScriptedTransport:
    """Fails the first ``n_failures`` sends, then delegates to the API."""

    def __init__(self, api: PredictionAPI, n_failures: int, error=None):
        self.api = api
        self.n_failures = n_failures
        self.sends = 0
        self.error = error or TransientTransportError("scripted failure")

    def send(self, blocks):
        self.sends += 1
        if self.sends <= self.n_failures:
            raise self.error
        return self.api.predict_proba_blocks(blocks)


def make_broker(api, **kwargs):
    kwargs.setdefault("window_s", 0.0)
    kwargs.setdefault("sleep", None)
    return QueryBroker(DirectTransport(api), **kwargs)


class TestPredictProbaBlocks:
    def test_one_round_trip_many_blocks(self, linear_api, blobs3):
        before_q, before_t = linear_api.query_count, linear_api.request_count
        blocks = [blobs3.X[:3], blobs3.X[3:4], blobs3.X[4:9]]
        results = linear_api.predict_proba_blocks(blocks)
        assert linear_api.request_count - before_t == 1
        assert linear_api.query_count - before_q == 9
        assert [r.shape for r in results] == [(3, 3), (1, 3), (5, 3)]

    def test_blocks_bitwise_equal_solo_calls(self, linear_api, blobs3):
        blocks = [blobs3.X[:4], blobs3.X[10:11], blobs3.X[4:10]]
        fused = linear_api.predict_proba_blocks(blocks)
        for block, result in zip(blocks, fused):
            solo = linear_api.predict_proba(block)
            assert np.array_equal(solo, result)

    def test_validation(self, linear_api, blobs3):
        with pytest.raises(ValidationError):
            linear_api.predict_proba_blocks([])
        with pytest.raises(ValidationError):
            linear_api.predict_proba_blocks([blobs3.X[0]])  # 1-D block
        with pytest.raises(ValidationError):
            linear_api.predict_proba_blocks([blobs3.X[:0]])  # empty block

    def test_budget_checked_before_scoring(self, linear_model, blobs3):
        api = PredictionAPI(linear_model, budget=5)
        with pytest.raises(APIBudgetExceededError):
            api.predict_proba_blocks([blobs3.X[:3], blobs3.X[3:6]])
        assert api.query_count == 0
        assert api.request_count == 0


class TestMeterCommitOnSuccess:
    """Regression: the meter used to commit *before* the model ran, so a
    mid-batch failure permanently burnt budget for undelivered answers."""

    class _Boom:
        def __call__(self, probs):
            raise RuntimeError("mid-batch model failure")

    def test_failed_call_burns_nothing(self, linear_model, blobs3):
        api = PredictionAPI(linear_model, budget=10, transform=self._Boom())
        with pytest.raises(RuntimeError):
            api.predict_proba(blobs3.X[:4])
        assert api.query_count == 0
        assert api.request_count == 0

    def test_budget_survives_failures_then_serves(self, linear_model, blobs3):
        api = PredictionAPI(linear_model, budget=4, transform=self._Boom())
        for _ in range(3):
            with pytest.raises(RuntimeError):
                api.predict_proba(blobs3.X[:4])
        # Without commit-on-success three failed calls would have burnt
        # 12 > 4 rows of budget; the full budget must still be available.
        api._transform = None
        assert api.predict_proba(blobs3.X[:4]).shape == (4, 3)
        assert api.query_count == 4


class TestBrokerBasics:
    def test_handle_satisfies_query_client(self, linear_api):
        handle = make_broker(linear_api).handle("h")
        assert isinstance(handle, QueryClient)
        assert isinstance(linear_api, QueryClient)
        assert handle.n_features == linear_api.n_features
        assert handle.n_classes == linear_api.n_classes

    def test_single_caller_bitwise_and_meters(self, linear_model, blobs3):
        api = PredictionAPI(linear_model)
        broker = make_broker(api)
        handle = broker.handle("solo")
        direct = PredictionAPI(linear_model)

        row = handle.predict_proba(blobs3.X[0])
        mat = handle.predict_proba(blobs3.X[:5])
        assert np.array_equal(row, direct.predict_proba(blobs3.X[0]))
        assert np.array_equal(mat, direct.predict_proba(blobs3.X[:5]))
        assert row.ndim == 1 and mat.shape == (5, 3)
        assert handle.query_count == 6 == api.query_count
        assert handle.request_count == 2

    def test_shape_errors_raised_in_caller(self, linear_model):
        api = PredictionAPI(linear_model)
        handle = make_broker(api).handle()
        with pytest.raises(ValidationError):
            handle.predict_proba(np.zeros(4))  # wrong width
        assert api.query_count == 0

    def test_empty_batch_mirrors_direct_api(self, linear_model):
        """A 0-row 2-D batch is answered like the direct API does it:
        an empty ``(0, C)`` result and one zero-row logical round trip,
        never a 0-row block on a fused trip."""
        api = PredictionAPI(linear_model)
        direct = PredictionAPI(linear_model)
        handle = make_broker(api).handle()
        empty = np.zeros((0, direct.n_features))
        out = handle.predict_proba(empty)
        ref = direct.predict_proba(empty)
        assert out.shape == ref.shape == (0, direct.n_classes)
        assert out.dtype == ref.dtype
        assert handle.query_count == 0 == api.query_count
        assert handle.request_count == 1 == direct.request_count
        # No physical trip traveled for the empty batch.
        assert api.request_count == 0

    def test_validation(self, linear_api):
        with pytest.raises(ValidationError):
            QueryBroker(DirectTransport(linear_api), window_s=-1)
        with pytest.raises(ValidationError):
            QueryBroker(DirectTransport(linear_api), max_rows=0)
        with pytest.raises(ValidationError):
            DirectTransport("not an api")

    def test_bare_api_wrapped_in_direct_transport(self, linear_api, blobs3):
        broker = QueryBroker(linear_api, window_s=0.0)
        assert broker.api is linear_api
        handle = broker.handle()
        assert handle.predict_proba(blobs3.X[:2]).shape == (2, 3)


class TestBrokerCoalescing:
    def test_concurrent_callers_fuse_trips(self, linear_model, blobs3):
        api = PredictionAPI(linear_model)
        broker = QueryBroker(DirectTransport(api), window_s=0.05)
        n = 8
        results: list[np.ndarray | None] = [None] * n
        barrier = threading.Barrier(n)

        def work(i):
            handle = broker.handle(f"c{i}")
            barrier.wait()
            results[i] = handle.predict_proba(blobs3.X[i * 3:(i + 1) * 3])

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Ordering/content: every caller got exactly its own rows.
        reference = PredictionAPI(linear_model)
        for i in range(n):
            expected = reference.predict_proba(blobs3.X[i * 3:(i + 1) * 3])
            assert np.array_equal(results[i], expected)
        # Fusion: far fewer physical trips than logical requests.
        stats = broker.stats()
        assert stats.n_requests == n
        assert api.request_count < n
        assert stats.n_round_trips == api.request_count
        assert stats.max_fused_requests >= 2
        # Attribution: handle meters sum to the API meter.
        assert sum(h.query_count for h in broker.handles) == api.query_count

    def test_max_rows_splits_fused_trips(self, linear_api, blobs3):
        broker = QueryBroker(
            DirectTransport(linear_api), window_s=0.0, max_rows=4
        )
        handle = broker.handle()
        # A single block larger than max_rows still travels (alone).
        out = handle.predict_proba(blobs3.X[:6])
        assert out.shape == (6, 3)

    def test_interpretation_through_handle_bitwise(self, relu_api, relu_model, blobs3):
        direct = OpenAPIInterpreter(seed=5).interpret(relu_api, blobs3.X[1])
        api = PredictionAPI(relu_model)
        handle = make_broker(api).handle()
        brokered = OpenAPIInterpreter(seed=5).interpret(handle, blobs3.X[1])
        assert np.array_equal(
            direct.decision_features, brokered.decision_features
        )
        assert direct.n_queries == brokered.n_queries
        assert direct.iterations == brokered.iterations


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(
            max_retries=5, base_backoff_s=0.01, multiplier=2.0,
            max_backoff_s=0.05,
        )
        err = TransientTransportError("x")
        assert policy.backoff_s(1, err) == pytest.approx(0.01)
        assert policy.backoff_s(2, err) == pytest.approx(0.02)
        assert policy.backoff_s(4, err) == pytest.approx(0.05)  # capped

    def test_rate_limit_retry_after_wins(self):
        policy = RetryPolicy(base_backoff_s=0.01)
        err = RateLimitedError("429", retry_after_s=0.5)
        assert policy.backoff_s(1, err) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValidationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(base_backoff_s=-1)


class TestBrokerRetries:
    def test_transient_failures_survived(self, linear_model, blobs3):
        api = PredictionAPI(linear_model)
        transport = FlakyScriptedTransport(api, n_failures=3)
        broker = QueryBroker(
            transport, window_s=0.0, retry=RetryPolicy(max_retries=3),
            sleep=None,
        )
        handle = broker.handle()
        out = handle.predict_proba(blobs3.X[:2])
        assert np.array_equal(out, linear_model.predict_proba(blobs3.X[:2]))
        assert transport.sends == 4
        stats = broker.stats()
        assert stats.n_retries == 3
        assert stats.n_transient == 3
        assert stats.n_exhausted == 0
        assert handle.query_count == 2 == api.query_count

    def test_exhaustion_raises_and_burns_nothing(self, linear_model, blobs3):
        api = PredictionAPI(linear_model)
        transport = FlakyScriptedTransport(api, n_failures=100)
        broker = QueryBroker(
            transport, window_s=0.0, retry=RetryPolicy(max_retries=2),
            sleep=None,
        )
        handle = broker.handle()
        with pytest.raises(TransportExhaustedError) as excinfo:
            handle.predict_proba(blobs3.X[:2])
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, TransientTransportError)
        assert api.query_count == 0
        assert handle.query_count == 0
        assert broker.stats().n_exhausted == 1
        # The broker must stay serviceable after an exhausted trip.
        transport.n_failures = 0
        assert handle.predict_proba(blobs3.X[:2]).shape == (2, 3)

    def test_budget_error_passes_through_unretried(self, linear_model, blobs3):
        api = PredictionAPI(linear_model, budget=3)
        transport = FlakyScriptedTransport(api, n_failures=0)
        broker = QueryBroker(transport, window_s=0.0, sleep=None)
        handle = broker.handle()
        with pytest.raises(APIBudgetExceededError):
            handle.predict_proba(blobs3.X[:5])
        assert transport.sends == 1  # budget failures are not retryable
        assert api.query_count == 0

    def test_fused_budget_refusal_splits_per_caller(self, linear_model, blobs3):
        """Near budget exhaustion the broker must not fail a caller whose
        request would have succeeded alone: a fused trip refused by the
        budget check re-dispatches each caller's block solo."""
        api = PredictionAPI(linear_model, budget=10)
        broker = QueryBroker(DirectTransport(api), window_s=0.05)
        outcomes: list[object] = [None, None]
        barrier = threading.Barrier(2)

        def work(i):
            handle = broker.handle(f"c{i}")
            barrier.wait()
            try:
                outcomes[i] = handle.predict_proba(blobs3.X[:6])
            except APIBudgetExceededError as exc:
                outcomes[i] = exc

        threads = [threading.Thread(target=work, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Whether or not the window fused them, exactly one 6-row request
        # fits the 10-row budget; the other gets the budget error.
        ok = [o for o in outcomes if isinstance(o, np.ndarray)]
        failed = [o for o in outcomes if isinstance(o, APIBudgetExceededError)]
        assert len(ok) == 1 and len(failed) == 1
        assert ok[0].shape == (6, 3)
        assert api.query_count == 6
        assert sum(h.query_count for h in broker.handles) == 6


class TestSimulatedTransport:
    def test_failure_injection_deterministic(self, linear_api, blobs3):
        outcomes = []
        for _ in range(2):
            transport = SimulatedTransport(
                linear_api, failure_prob=0.5, seed=42, sleep=None
            )
            run = []
            for _ in range(10):
                try:
                    transport.send([blobs3.X[:1]])
                    run.append("ok")
                except TransientTransportError:
                    run.append("fail")
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
        assert "fail" in outcomes[0] and "ok" in outcomes[0]

    def test_rate_limit_token_bucket(self, linear_api, blobs3):
        clock = {"t": 0.0}
        transport = SimulatedTransport(
            linear_api, rate_per_s=2.0, burst=2, sleep=None,
            clock=lambda: clock["t"],
        )
        transport.send([blobs3.X[:1]])
        transport.send([blobs3.X[:1]])
        with pytest.raises(RateLimitedError) as excinfo:
            transport.send([blobs3.X[:1]])
        assert excinfo.value.retry_after_s == pytest.approx(0.5)
        clock["t"] += 0.6  # refill > 1 token
        transport.send([blobs3.X[:1]])

    def test_latency_recorded_via_injected_sleep(self, linear_api, blobs3):
        slept = []
        transport = SimulatedTransport(
            linear_api, latency_s=0.01, per_row_latency_s=0.001,
            sleep=slept.append,
        )
        transport.send([blobs3.X[:3], blobs3.X[:2]])
        assert slept == [pytest.approx(0.01 + 0.005)]

    def test_validation(self, linear_api):
        with pytest.raises(ValidationError):
            SimulatedTransport(linear_api, failure_prob=1.5)
        with pytest.raises(ValidationError):
            SimulatedTransport(linear_api, latency_s=-1)
        with pytest.raises(ValidationError):
            SimulatedTransport(linear_api, rate_per_s=0)
        with pytest.raises(ValidationError):
            SimulatedTransport(linear_api, burst=0)


class TestAttributionUnderFaults:
    def test_handles_sum_to_api_meter(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        broker = QueryBroker(
            SimulatedTransport(api, failure_prob=0.3, seed=3, sleep=None),
            window_s=0.01,
            retry=RetryPolicy(max_retries=16),
            sleep=None,
        )
        n = 6
        errors: list[Exception | None] = [None] * n
        barrier = threading.Barrier(n)

        def work(i):
            handle = broker.handle(f"c{i}")
            interpreter = OpenAPIInterpreter(seed=20 + i)
            barrier.wait()
            try:
                interpreter.interpret(handle, blobs3.X[i])
            except Exception as exc:  # noqa: BLE001
                errors[i] = exc

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(e is None for e in errors)
        assert sum(h.query_count for h in broker.handles) == api.query_count
        assert broker.stats().n_round_trips == api.request_count


class TestBatchInterpreterTransport:
    def test_raise_on_transport_false_keeps_partial_results(
        self, relu_model, blobs3
    ):
        api = PredictionAPI(relu_model)
        transport = FlakyScriptedTransport(api, n_failures=0)
        broker = QueryBroker(
            transport, window_s=0.0, retry=RetryPolicy(max_retries=0),
            sleep=None,
        )
        handle = broker.handle()
        y0 = handle.predict_proba(blobs3.X[:3])
        # Let round trip 1 succeed (certifying easy instances), then die.
        transport.sends = 0
        transport.n_failures = 10**9

        def run(**kwargs):
            transport.sends = 0
            return BatchOpenAPIInterpreter(seed=0).interpret_batch(
                handle, blobs3.X[:3], y0=y0, **kwargs
            )

        with pytest.raises(TransportExhaustedError):
            run()
        result = run(raise_on_transport=False)
        assert result.transport_failed
        assert not result.budget_exhausted
        assert all(i is None for i in result.interpretations)
        assert result.n_queries == 0

    def test_probe_trip_covered_by_opt_out_flags(self, relu_model, blobs3):
        """Regression: the round-0 probe (y0=None) sat outside the
        ``raise_on_transport``/``raise_on_budget`` opt-outs, so a failure
        on the very first trip raised the exception the caller had
        opted out of."""
        api = PredictionAPI(relu_model)
        broker = QueryBroker(
            FlakyScriptedTransport(api, n_failures=10**9),
            window_s=0.0, retry=RetryPolicy(max_retries=0), sleep=None,
        )
        result = BatchOpenAPIInterpreter(seed=0).interpret_batch(
            broker.handle(), blobs3.X[:3], raise_on_transport=False
        )
        assert result.transport_failed and not result.budget_exhausted
        assert all(i is None for i in result.interpretations)
        assert result.rounds == 0 and result.n_queries == 0

        budget_api = PredictionAPI(relu_model, budget=1)
        result = BatchOpenAPIInterpreter(seed=0).interpret_batch(
            budget_api, blobs3.X[:3], raise_on_budget=False
        )
        assert result.budget_exhausted and not result.transport_failed
        assert all(i is None for i in result.interpretations)
        assert result.rounds == 0 and result.n_queries == 0

    def test_clean_transport_flag_defaults(self, relu_api, blobs3):
        result = BatchOpenAPIInterpreter(seed=0).interpret_batch(
            relu_api, blobs3.X[:3]
        )
        assert not result.transport_failed


class TestServiceWithBroker:
    def test_brokered_service_bitwise_and_exact_meters(
        self, relu_model, blobs3
    ):
        plain_api = PredictionAPI(relu_model)
        plain = InterpretationService(plain_api, seed=0, max_batch_size=8)
        expected = [r.interpretation for r in plain.interpret_many(blobs3.X[:6])]

        api = PredictionAPI(relu_model)
        broker = make_broker(api)
        service = InterpretationService(
            api, broker=broker, seed=0, max_batch_size=8
        )
        responses = service.interpret_many(blobs3.X[:6])
        assert all(r.ok for r in responses)
        for response, exp in zip(responses, expected):
            assert np.array_equal(
                response.interpretation.decision_features,
                exp.decision_features,
            )
        assert service.stats().n_queries == api.query_count
        assert sum(h.query_count for h in broker.handles) == api.query_count

    def test_broker_must_share_the_api(self, relu_model):
        api = PredictionAPI(relu_model)
        other = PredictionAPI(relu_model)
        with pytest.raises(ValidationError):
            InterpretationService(api, broker=make_broker(other))

    def test_transport_failure_becomes_envelope(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        broker = QueryBroker(
            SimulatedTransport(api, failure_prob=1.0, seed=0, sleep=None),
            window_s=0.0,
            retry=RetryPolicy(max_retries=1),
            sleep=None,
        )
        service = InterpretationService(api, broker=broker, seed=0)
        response = service.interpret(blobs3.X[0])
        assert not response.ok
        assert response.error.code == ERROR_TRANSPORT_FAILED
        assert response.error.retryable
        assert api.query_count == 0

    def test_midrun_transport_death_envelopes_misses(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        transport = FlakyScriptedTransport(api, n_failures=0)
        broker = QueryBroker(
            transport, window_s=0.0, retry=RetryPolicy(max_retries=0),
            sleep=None,
        )
        service = InterpretationService(
            api, broker=broker, seed=0, enable_cache=False, max_batch_size=4
        )

        # Probe succeeds, every lock-step round after it fails.
        real_send = transport.send
        state = {"sent": 0}

        def dying_send(blocks):
            state["sent"] += 1
            if state["sent"] > 1:
                raise TransientTransportError("wire died mid-run")
            return real_send(blocks)

        transport.send = dying_send
        responses = service.interpret_many(blobs3.X[:3])
        assert all(not r.ok for r in responses)
        assert {r.error.code for r in responses} == {ERROR_TRANSPORT_FAILED}
        # Probe rows were delivered and are honestly metered.
        assert service.stats().n_queries == api.query_count == 3

    def test_sharded_workers_share_one_broker(self, relu_model, blobs3):
        api = PredictionAPI(relu_model)
        broker = QueryBroker(DirectTransport(api), window_s=0.005)
        service = ShardedInterpretationService(
            api, n_workers=3, broker=broker, seed=0, max_batch_size=4
        )
        rng = np.random.default_rng(0)
        requests = blobs3.X[rng.integers(0, 20, 40)]
        with service:
            responses = service.interpret_many(requests)
        assert all(r.ok for r in responses)
        assert service.stats().n_queries == api.query_count
        assert sum(h.query_count for h in broker.handles) == api.query_count
        stats = broker.stats()
        assert stats.n_round_trips == api.request_count
        assert stats.n_requests >= stats.n_round_trips

    def test_handle_identity_stable_per_worker(self, relu_model):
        api = PredictionAPI(relu_model)
        service = InterpretationService(api, broker=make_broker(api))
        first = service._client(0)
        assert isinstance(first, BrokerHandle)
        assert service._client(0) is first
        assert service._client(1) is not first


class TestMeterThreadSafety:
    """Regression: ``_score_blocks`` used an unsynchronized
    check-then-commit, so concurrent broker-off callers could lose meter
    updates (breaking ``sum(handle.query_count) == api.query_count``) and
    two threads could both pass the budget check, silently overspending."""

    def test_concurrent_round_trips_never_lose_updates(
        self, linear_model, blobs3
    ):
        api = PredictionAPI(linear_model)
        broker = QueryBroker(DirectTransport(api), coalesce=False)
        n_threads, trips_each = 16, 8
        barrier = threading.Barrier(n_threads)

        def work(i):
            handle = broker.handle(f"c{i}")
            barrier.wait()
            for _ in range(trips_each):
                handle.predict_proba(blobs3.X[i % 10 : i % 10 + 3])

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert api.query_count == n_threads * trips_each * 3
        assert api.request_count == n_threads * trips_each
        assert sum(h.query_count for h in broker.handles) == api.query_count

    def test_concurrent_callers_never_overspend_budget(
        self, linear_model, blobs3
    ):
        budget = 30
        api = PredictionAPI(linear_model, budget=budget)
        n_threads = 16
        barrier = threading.Barrier(n_threads)
        delivered = []
        lock = threading.Lock()

        def work(i):
            barrier.wait()
            try:
                probs = api.predict_proba(blobs3.X[i % 10 : i % 10 + 4])
            except APIBudgetExceededError:
                return
            with lock:
                delivered.append(probs.shape[0])

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert api.query_count <= budget
        assert api.query_count == sum(delivered)


class _MiscountingTransport:
    """A buggy pluggable Transport that returns too few result blocks."""

    def __init__(self, api: PredictionAPI):
        self.api = api

    def send(self, blocks):
        return self.api.predict_proba_blocks(blocks)[:-1]


class _DyingTransport:
    """Raises a non-``Exception`` once dispatch is in flight, on cue."""

    class Interrupt(BaseException):
        pass

    def __init__(self, api: PredictionAPI):
        self.api = api
        self.entered = threading.Event()
        self.release = threading.Event()

    def send(self, blocks):
        self.entered.set()
        assert self.release.wait(timeout=5.0)
        raise self.Interrupt()


class TestBrokerResilience:
    def test_miscounting_transport_fails_all_callers_without_hanging(
        self, linear_model, blobs3
    ):
        """Regression: the scatter used plain ``zip``, so a transport
        returning fewer blocks than the fused trip left the unmatched
        tickets blocked forever; now every caller gets a TransportError."""
        api = PredictionAPI(linear_model)
        broker = QueryBroker(
            _MiscountingTransport(api), window_s=0.2, sleep=None
        )
        n = 3
        outcomes: list[object] = [None] * n
        barrier = threading.Barrier(n)

        def work(i):
            handle = broker.handle(f"c{i}")
            barrier.wait()
            try:
                outcomes[i] = handle.predict_proba(blobs3.X[i : i + 2])
            except TransportError as exc:
                outcomes[i] = exc

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads)
        assert all(isinstance(o, TransportError) for o in outcomes)
        # Unattributable rows are metered to no handle.
        assert sum(h.query_count for h in broker.handles) == 0

    def test_leader_death_fails_stranded_tickets_and_releases_leadership(
        self, linear_model, blobs3
    ):
        """Regression: a non-``Exception`` escaping the leader left
        ``_leader_active`` set forever, wedging every later submission."""
        api = PredictionAPI(linear_model)
        transport = _DyingTransport(api)
        broker = QueryBroker(transport, window_s=0.0, sleep=None)
        leader_outcome: list[object] = [None]
        follower_outcome: list[object] = [None]

        def leader():
            handle = broker.handle("leader")
            try:
                handle.predict_proba(blobs3.X[:2])
            except BaseException as exc:  # noqa: BLE001 — capturing for assert
                leader_outcome[0] = exc

        def follower():
            handle = broker.handle("follower")
            assert transport.entered.wait(timeout=5.0)
            try:
                handle.predict_proba(blobs3.X[2:4])
            except TransportError as exc:
                follower_outcome[0] = exc

        t_lead = threading.Thread(target=leader)
        t_follow = threading.Thread(target=follower)
        t_lead.start()
        # The follower enqueues while the leader's trip is stuck in send().
        t_follow.start()
        assert transport.entered.wait(timeout=5.0)
        # Give the follower a moment to enqueue behind the in-flight trip.
        deadline = 200
        while len(broker._pending) == 0 and deadline > 0:
            time.sleep(0.005)
            deadline -= 1
        transport.release.set()
        t_lead.join(timeout=10.0)
        t_follow.join(timeout=10.0)
        assert not t_lead.is_alive() and not t_follow.is_alive()
        # The original interrupt propagates to the leading caller itself;
        # the stranded follower gets a retryable transport error.
        assert isinstance(leader_outcome[0], _DyingTransport.Interrupt)
        assert isinstance(follower_outcome[0], TransientTransportError)
        # Leadership was released: the broker accepts new traffic.
        broker.transport = DirectTransport(api)
        assert broker.handle("late").predict_proba(blobs3.X[:1]).shape == (1, 3)
        assert not broker._leader_active

    def test_lone_caller_skips_coalescing_window(self, linear_model, blobs3):
        """A single-handle broker cannot fuse with anyone; the leader must
        not stall ``window_s`` per round trip waiting for callers that
        cannot exist."""
        api = PredictionAPI(linear_model)
        broker = QueryBroker(DirectTransport(api), window_s=0.5)
        handle = broker.handle()
        start = time.perf_counter()
        for i in range(4):
            handle.predict_proba(blobs3.X[i : i + 2])
        elapsed = time.perf_counter() - start
        # Four trips through a 0.5 s window would take >= 2 s if the
        # window were paid; skipping it makes them near-instant.
        assert elapsed < 0.4
        assert api.request_count == 4

    def test_second_handle_restores_window_fusion(self, linear_model, blobs3):
        """The skip applies only while one handle exists — two handles
        must still fuse through the window."""
        api = PredictionAPI(linear_model)
        broker = QueryBroker(DirectTransport(api), window_s=0.05)
        n = 4
        outcomes: list[object] = [None] * n
        barrier = threading.Barrier(n)

        def work(i):
            handle = broker.handle(f"c{i}")
            barrier.wait()
            outcomes[i] = handle.predict_proba(blobs3.X[i : i + 2])

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(isinstance(o, np.ndarray) for o in outcomes)
        assert broker.stats().max_fused_requests >= 2

    def test_interrupt_between_pop_and_dispatch_strands_no_caller(
        self, linear_model, blobs3
    ):
        """Regression: a BaseException landing after the leader popped a
        fused batch but before dispatch resolved it failed only the
        still-queued tickets — co-riders of the popped batch hung."""

        class Interrupt(BaseException):
            pass

        api = PredictionAPI(linear_model)
        broker = QueryBroker(DirectTransport(api), window_s=0.1)

        def dying_dispatch(batch):
            raise Interrupt()

        broker._dispatch = dying_dispatch
        n = 3
        outcomes: list[object] = [None] * n
        barrier = threading.Barrier(n)

        def work(i):
            handle = broker.handle(f"c{i}")
            barrier.wait()
            try:
                outcomes[i] = handle.predict_proba(blobs3.X[i : i + 2])
            except BaseException as exc:  # noqa: BLE001 — capturing for assert
                outcomes[i] = exc

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads)
        # Every caller resolved: leaders re-raise the interrupt; popped
        # co-riders get the non-retryable unknown-outcome error,
        # still-queued tickets the retryable stranded error.
        interrupted = [o for o in outcomes if isinstance(o, Interrupt)]
        stranded = [o for o in outcomes if isinstance(o, TransportError)]
        assert len(interrupted) >= 1
        assert len(interrupted) + len(stranded) == n
        # Leadership released and the broker still serves.
        del broker._dispatch
        assert broker.handle("late").predict_proba(blobs3.X[:1]).shape == (1, 3)
        assert not broker._leader_active
