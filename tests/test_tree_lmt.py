"""Tests for C4.5 split search and the logistic model tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.models import LogisticModelTree
from repro.models.tree import entropy, find_best_split


class TestEntropy:
    def test_pure_is_zero(self):
        assert entropy(np.zeros(10, dtype=int), 2) == 0.0

    def test_uniform_two_classes_is_one_bit(self):
        labels = np.array([0] * 5 + [1] * 5)
        assert entropy(labels, 2) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert entropy(np.empty(0, dtype=int), 3) == 0.0

    def test_uniform_k_classes(self):
        labels = np.arange(4).repeat(3)
        assert entropy(labels, 4) == pytest.approx(2.0)


class TestFindBestSplit:
    def test_clean_threshold_found(self):
        X = np.array([[0.1], [0.2], [0.3], [0.7], [0.8], [0.9]])
        y = np.array([0, 0, 0, 1, 1, 1])
        split = find_best_split(X, y, 2)
        assert split is not None
        assert split.feature == 0
        assert 0.3 < split.threshold < 0.7
        assert split.gain == pytest.approx(1.0)
        assert split.n_left == 3 and split.n_right == 3

    def test_picks_informative_feature(self):
        rng = np.random.default_rng(0)
        n = 100
        informative = np.concatenate([rng.uniform(0, 0.4, n // 2),
                                      rng.uniform(0.6, 1.0, n // 2)])
        noise = rng.uniform(size=n)
        X = np.column_stack([noise, informative])
        y = np.array([0] * (n // 2) + [1] * (n // 2))
        split = find_best_split(X, y, 2)
        assert split is not None and split.feature == 1

    def test_pure_node_returns_none(self):
        X = np.random.default_rng(1).uniform(size=(10, 2))
        assert find_best_split(X, np.zeros(10, dtype=int), 2) is None

    def test_min_leaf_respected(self):
        X = np.array([[0.0], [1.0], [1.1], [1.2]])
        y = np.array([0, 1, 1, 1])
        split = find_best_split(X, y, 2, min_leaf=2)
        assert split is None or (split.n_left >= 2 and split.n_right >= 2)

    def test_too_few_samples(self):
        X = np.array([[0.0]])
        assert find_best_split(X, np.array([0]), 2) is None

    def test_constant_feature_unusable(self):
        X = np.ones((10, 1))
        y = np.array([0, 1] * 5)
        assert find_best_split(X, y, 2) is None

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            find_best_split(np.ones(5), np.zeros(5, dtype=int), 2)
        with pytest.raises(ValidationError):
            find_best_split(np.ones((5, 2)), np.zeros(4, dtype=int), 2)

    def test_threshold_capping(self):
        """max_thresholds caps the candidate scan without losing the split."""
        rng = np.random.default_rng(2)
        X = rng.uniform(size=(200, 1))
        y = (X[:, 0] > 0.5).astype(int)
        split = find_best_split(X, y, 2, max_thresholds=4)
        assert split is not None
        assert abs(split.threshold - 0.5) < 0.15


class TestLogisticModelTree:
    def test_xor_requires_multiple_leaves(self, lmt_model):
        assert lmt_model.n_leaves >= 2
        assert lmt_model.depth >= 1

    def test_xor_accuracy(self, lmt_model, xor_dataset):
        assert lmt_model.accuracy(xor_dataset.X, xor_dataset.y) > 0.9

    def test_linearly_separable_stays_single_leaf(self, blobs3):
        lmt = LogisticModelTree(
            min_samples_split=50, leaf_accuracy_stop=0.9, seed=0
        ).fit(blobs3.X, blobs3.y)
        assert lmt.n_leaves == 1
        assert lmt.region_id(blobs3.X[0]) == 0

    def test_min_samples_split_blocks_growth(self, xor_dataset):
        lmt = LogisticModelTree(
            min_samples_split=10_000, leaf_accuracy_stop=0.99, seed=0
        ).fit(xor_dataset.X, xor_dataset.y)
        assert lmt.n_leaves == 1

    def test_max_depth_zero_forces_single_leaf(self, xor_dataset):
        lmt = LogisticModelTree(max_depth=0, seed=0).fit(
            xor_dataset.X, xor_dataset.y
        )
        assert lmt.n_leaves == 1

    def test_routing_consistent_with_region_id(self, lmt_model, xor_dataset):
        for x in xor_dataset.X[:20]:
            leaf = lmt_model.leaf_for(x)
            assert leaf.leaf_id == lmt_model.region_id(x)

    def test_local_params_match_leaf_classifier(self, lmt_model, xor_dataset):
        x = xor_dataset.X[0]
        local = lmt_model.local_linear_params(x)
        leaf = lmt_model.leaf_for(x)
        np.testing.assert_array_equal(local.weights, leaf.classifier.weights)
        np.testing.assert_array_equal(local.bias, leaf.classifier.bias)

    def test_local_params_reproduce_logits(self, lmt_model, xor_dataset):
        for x in xor_dataset.X[:10]:
            local = lmt_model.local_linear_params(x)
            np.testing.assert_allclose(
                local.logits(x), lmt_model.decision_logits(x), atol=1e-12
            )

    def test_leaves_iterator(self, lmt_model):
        leaves = list(lmt_model.leaves())
        assert len(leaves) == lmt_model.n_leaves
        assert all(leaf.is_leaf for leaf in leaves)
        assert [leaf.leaf_id for leaf in leaves] == list(range(len(leaves)))

    def test_predict_proba_batch(self, lmt_model, xor_dataset):
        probs = lmt_model.predict_proba(xor_dataset.X[:5])
        assert probs.shape == (5, 2)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_unfitted_raises(self):
        lmt = LogisticModelTree()
        with pytest.raises(NotFittedError):
            lmt.predict(np.ones((1, 2)))
        with pytest.raises(NotFittedError):
            _ = lmt.n_leaves

    def test_invalid_hyperparams(self):
        with pytest.raises(ValidationError):
            LogisticModelTree(min_samples_split=1)
        with pytest.raises(ValidationError):
            LogisticModelTree(leaf_accuracy_stop=0.0)
        with pytest.raises(ValidationError):
            LogisticModelTree(max_depth=-1)

    def test_reproducible(self, xor_dataset):
        a = LogisticModelTree(min_samples_split=40, max_depth=3, seed=5).fit(
            xor_dataset.X, xor_dataset.y
        )
        b = LogisticModelTree(min_samples_split=40, max_depth=3, seed=5).fit(
            xor_dataset.X, xor_dataset.y
        )
        assert a.n_leaves == b.n_leaves
        np.testing.assert_array_equal(
            a.predict(xor_dataset.X), b.predict(xor_dataset.X)
        )

    def test_region_partition(self, lmt_model, xor_dataset):
        """Every instance maps to exactly one leaf (regions partition X)."""
        rng = np.random.default_rng(3)
        probes = rng.uniform(0, 1, size=(50, 2))
        for x in probes:
            rid = lmt_model.region_id(x)
            assert 0 <= rid < lmt_model.n_leaves
