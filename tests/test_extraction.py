"""Tests for the reverse-engineering extension (repro.extraction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PredictionAPI
from repro.core import OpenAPIInterpreter
from repro.exceptions import ValidationError
from repro.extraction import (
    PiecewiseSurrogate,
    RegionExplorer,
    fidelity_report,
)


class TestRegionExplorer:
    def test_harvest_linear_model_single_region(self, linear_api, blobs3):
        explorer = RegionExplorer(linear_api, seed=0)
        explorer.explore(blobs3.X[:10])
        # One region: all ten probes collapse to one record.
        assert explorer.n_regions == 1
        assert explorer.failed_probes == 0

    def test_record_reproduces_probabilities(self, linear_api, linear_model, blobs3):
        explorer = RegionExplorer(linear_api, seed=0)
        record = explorer.harvest(blobs3.X[0])
        assert record is not None
        from repro.models.activations import softmax

        for x in blobs3.X[:5]:
            np.testing.assert_allclose(
                softmax(record.logits(x)),
                linear_model.predict_proba(x),
                atol=1e-8,
            )

    def test_relative_gauge(self, linear_api, blobs3):
        explorer = RegionExplorer(linear_api, seed=0)
        record = explorer.harvest(blobs3.X[0])
        np.testing.assert_allclose(record.rel_weights[:, 0], 0.0)
        assert record.rel_bias[0] == 0.0

    def test_multiple_regions_on_plnn(self, relu_api, blobs3):
        explorer = RegionExplorer(relu_api, seed=1)
        explorer.explore(blobs3.X[:30])
        assert explorer.n_regions > 1

    def test_dedup_by_fingerprint(self, relu_api, blobs3):
        explorer = RegionExplorer(relu_api, seed=2)
        first = explorer.harvest(blobs3.X[0])
        again = explorer.harvest(blobs3.X[0] + 1e-12)
        assert explorer.n_regions >= 1
        assert again is not None and again.key == first.key

    def test_explore_random(self, relu_api):
        explorer = RegionExplorer(relu_api, seed=3)
        records = explorer.explore_random(5)
        assert len(records) == explorer.n_regions >= 1

    def test_validations(self, linear_api):
        with pytest.raises(ValidationError):
            RegionExplorer(linear_api, dedup_decimals=0)
        explorer = RegionExplorer(linear_api, seed=0)
        with pytest.raises(ValidationError):
            explorer.explore(np.ones((2, 99)))
        with pytest.raises(ValidationError):
            explorer.explore_random(0)
        with pytest.raises(ValidationError):
            explorer.explore_random(1, box=(1.0, 0.0))

    def test_custom_interpreter(self, linear_api, blobs3):
        interp = OpenAPIInterpreter(max_iterations=3, seed=0)
        explorer = RegionExplorer(linear_api, interpreter=interp, seed=0)
        assert explorer.harvest(blobs3.X[0]) is not None


class TestPiecewiseSurrogate:
    @pytest.fixture(scope="class")
    def surrogate_pair(self, relu_api, blobs3):
        explorer = RegionExplorer(relu_api, seed=4)
        explorer.explore(blobs3.X[:60])
        return PiecewiseSurrogate(explorer.records), explorer

    def test_exact_on_anchors(self, surrogate_pair, relu_api):
        surrogate, explorer = surrogate_pair
        for record in explorer.records[:10]:
            np.testing.assert_allclose(
                surrogate.predict_proba(record.anchor),
                relu_api.predict_proba(record.anchor),
                atol=1e-8,
            )

    def test_is_a_plm(self, surrogate_pair, blobs3):
        surrogate, _ = surrogate_pair
        x = blobs3.X[0]
        local = surrogate.local_linear_params(x)
        np.testing.assert_allclose(
            local.logits(x), surrogate.decision_logits(x), atol=1e-12
        )
        assert isinstance(surrogate.region_id(x), int)

    def test_reinterpretable_by_openapi(self, surrogate_pair, blobs3):
        """The surrogate is itself a PLM behind an API — interpret it."""
        surrogate, _ = surrogate_pair
        api = PredictionAPI(surrogate)
        interp = OpenAPIInterpreter(seed=5).interpret(api, blobs3.X[0])
        assert interp.all_certified

    def test_fidelity_high_with_good_coverage(
        self, surrogate_pair, relu_api, blobs3
    ):
        surrogate, _ = surrogate_pair
        report = fidelity_report(surrogate, relu_api, blobs3.X[100:200])
        assert report.label_agreement > 0.9
        assert report.prob_mae < 0.1
        assert report.n_regions == surrogate.n_regions

    def test_empty_records_rejected(self):
        with pytest.raises(ValidationError):
            PiecewiseSurrogate([])

    def test_fidelity_validations(self, surrogate_pair, relu_api):
        surrogate, _ = surrogate_pair
        with pytest.raises(ValidationError):
            fidelity_report(surrogate, relu_api, np.empty((0, 6)))
        with pytest.raises(ValidationError):
            fidelity_report(surrogate, relu_api, np.ones(6))
