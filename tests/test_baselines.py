"""Tests for the baseline interpreters: gradients, ZOO, LIME, adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PredictionAPI
from repro.baselines import (
    GradientTimesInput,
    IntegratedGradients,
    LogOddsLIME,
    NaiveExplainer,
    OpenAPIExplainer,
    SaliencyMap,
    StandardLIME,
    ZOOInterpreter,
)
from repro.exceptions import ValidationError
from repro.models.openbox import ground_truth_decision_features


class TestSaliencyMap:
    def test_nonnegative(self, relu_model, blobs3):
        att = SaliencyMap(relu_model).explain(blobs3.X[0])
        assert np.all(att.values >= 0)
        assert att.method == "saliency"

    def test_linear_model_gives_abs_weight_column(self, linear_model, blobs3):
        att = SaliencyMap(linear_model).explain(blobs3.X[0], c=1)
        np.testing.assert_allclose(
            att.values, np.abs(linear_model.weights[:, 1])
        )

    def test_default_class_is_prediction(self, relu_model, blobs3):
        att = SaliencyMap(relu_model).explain(blobs3.X[0])
        assert att.target_class == int(relu_model.predict(blobs3.X[0])[0])

    def test_proba_mode(self, relu_model, blobs3):
        att = SaliencyMap(relu_model, of="proba").explain(blobs3.X[0], c=0)
        assert att.values.shape == (6,)

    def test_invalid_of_rejected(self, relu_model):
        with pytest.raises(ValidationError):
            SaliencyMap(relu_model, of="banana")


class TestGradientTimesInput:
    def test_linear_model(self, linear_model, blobs3):
        x = blobs3.X[0]
        att = GradientTimesInput(linear_model).explain(x, c=2)
        np.testing.assert_allclose(att.values, linear_model.weights[:, 2] * x)

    def test_zero_input_gives_zero(self, relu_model):
        x = np.zeros(6)
        att = GradientTimesInput(relu_model).explain(x, c=0)
        np.testing.assert_allclose(att.values, 0.0)


class TestIntegratedGradients:
    def test_completeness_on_linear_model(self, linear_model, blobs3):
        """For an affine score, IG sums exactly to f(x) - f(baseline)."""
        x = blobs3.X[0]
        c = 1
        att = IntegratedGradients(linear_model, steps=10).explain(x, c=c)
        f_x = float(linear_model.decision_logits(x)[c])
        f_0 = float(linear_model.decision_logits(np.zeros_like(x))[c])
        assert att.values.sum() == pytest.approx(f_x - f_0, abs=1e-8)

    def test_custom_baseline(self, linear_model, blobs3):
        x = blobs3.X[0]
        att = IntegratedGradients(
            linear_model, steps=5, baseline=x.copy()
        ).explain(x, c=0)
        np.testing.assert_allclose(att.values, 0.0, atol=1e-12)

    def test_validations(self, linear_model):
        with pytest.raises(ValidationError):
            IntegratedGradients(linear_model, steps=0)
        with pytest.raises(ValidationError):
            IntegratedGradients(linear_model, baseline=np.ones(3))


class TestZOO:
    def test_exact_on_linear_model(self, linear_api, linear_model, blobs3):
        """Inside one region the difference quotient is exact."""
        x0 = blobs3.X[0]
        att = ZOOInterpreter(linear_api, h=1e-4, seed=0).explain(x0, c=0)
        gt = ground_truth_decision_features(linear_model, x0, 0)
        np.testing.assert_allclose(att.values, gt, atol=1e-6)

    def test_query_count_and_samples(self, linear_model, blobs3):
        api = PredictionAPI(linear_model)
        att = ZOOInterpreter(api, h=1e-4, seed=0).explain(blobs3.X[0], c=0)
        d = blobs3.n_features
        assert att.n_queries == 2 * d
        assert att.samples.shape == (2 * d, d)

    def test_large_h_wrong_on_plnn(self, relu_api, relu_model, blobs3):
        x0 = blobs3.X[2]
        c = int(relu_model.predict(x0)[0])
        gt = ground_truth_decision_features(relu_model, x0, c)
        bad = ZOOInterpreter(relu_api, h=0.5, seed=0).explain(x0, c=c)
        good = ZOOInterpreter(relu_api, h=1e-6, seed=0).explain(x0, c=c)
        err_bad = np.abs(bad.values - gt).sum()
        err_good = np.abs(good.values - gt).sum()
        assert err_good < err_bad

    def test_validations(self, linear_api):
        with pytest.raises(ValidationError):
            ZOOInterpreter(linear_api, h=0.0)


class TestLogOddsLIME:
    def test_linear_regression_accurate_inside_region(
        self, linear_api, linear_model, blobs3
    ):
        x0 = blobs3.X[0]
        att = LogOddsLIME(linear_api, h=1e-3, seed=0).explain(x0, c=0)
        gt = ground_truth_decision_features(linear_model, x0, 0)
        np.testing.assert_allclose(att.values, gt, atol=1e-5)
        assert att.method == "lime_linear"

    def test_ridge_collapses_for_tiny_h(self, linear_api, linear_model, blobs3):
        """The paper's Ridge-LIME pathology: constant fit at tiny h."""
        x0 = blobs3.X[0]
        gt = ground_truth_decision_features(linear_model, x0, 0)
        att = LogOddsLIME(
            linear_api, h=1e-8, regression="ridge", seed=0
        ).explain(x0, c=0)
        assert np.linalg.norm(att.values) < 0.01 * np.linalg.norm(gt)
        assert att.method == "lime_ridge"

    def test_sample_budget_and_metadata(self, linear_model, blobs3):
        api = PredictionAPI(linear_model)
        lime = LogOddsLIME(api, h=1e-3, n_samples=20, seed=0)
        att = lime.explain(blobs3.X[0], c=0)
        assert att.n_queries == 20
        assert att.samples.shape == (20, blobs3.n_features)

    def test_validations(self, linear_api):
        with pytest.raises(ValidationError):
            LogOddsLIME(linear_api, regression="lasso")
        with pytest.raises(ValidationError):
            LogOddsLIME(linear_api, n_samples=3)
        with pytest.raises(ValidationError):
            LogOddsLIME(linear_api, h=0.0)


class TestStandardLIME:
    def test_produces_signed_attribution(self, relu_api, blobs3):
        att = StandardLIME(relu_api, seed=0).explain(blobs3.X[0])
        assert att.values.shape == (6,)
        assert att.method == "lime"

    def test_gradient_direction_on_linear_model(self, linear_api, linear_model, blobs3):
        """Locally, the probability fit should correlate with the true
        probability gradient of the target class."""
        x0 = blobs3.X[0]
        c = int(linear_model.predict(x0)[0])
        # Mild ridge strength: with the default alpha=1 the deliberate
        # shrinkage dominates at small h (the pathology other tests cover).
        att = StandardLIME(linear_api, h=0.01, alpha=1e-4, seed=0).explain(x0, c=c)
        grad = linear_model.input_gradient(x0, c, of="proba")
        cos = att.values @ grad / (
            np.linalg.norm(att.values) * np.linalg.norm(grad) + 1e-12
        )
        assert cos > 0.9

    def test_validations(self, linear_api):
        with pytest.raises(ValidationError):
            StandardLIME(linear_api, h=0.0)
        with pytest.raises(ValidationError):
            StandardLIME(linear_api, kernel_width=0.0)
        with pytest.raises(ValidationError):
            StandardLIME(linear_api, n_samples=2)


class TestAdapters:
    def test_openapi_adapter_exact(self, relu_api, relu_model, blobs3):
        x0 = blobs3.X[0]
        att = OpenAPIExplainer(relu_api, seed=0).explain(x0)
        gt = ground_truth_decision_features(relu_model, x0, att.target_class)
        np.testing.assert_allclose(att.values, gt, atol=1e-8)
        assert att.method == "openapi"
        assert att.samples is not None

    def test_naive_adapter(self, linear_api, linear_model, blobs3):
        x0 = blobs3.X[0]
        att = NaiveExplainer(linear_api, perturbation=1e-3, seed=0).explain(x0, c=0)
        gt = ground_truth_decision_features(linear_model, x0, 0)
        np.testing.assert_allclose(att.values, gt, atol=1e-6)
        assert att.method == "naive"
